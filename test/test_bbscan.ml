(* Tests for the sharded busy-beaver scan: the symmetry group really is
   a symmetry of the verification problem (relabelled protocols have the
   same threshold), pruning changes nothing observable, and aggregates
   are byte-identical across every jobs/chunk setting — the same
   determinism contract test_ensemble checks for the Monte-Carlo
   engine. *)

let prop name ?(count = 50) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* scan_result equality; [best] is compared by protocol name, which
   encodes the exact code the scan picked *)
let result_eq (a : Busy_beaver.scan_result) (b : Busy_beaver.scan_result) =
  a.Busy_beaver.num_protocols = b.Busy_beaver.num_protocols
  && a.Busy_beaver.num_threshold = b.Busy_beaver.num_threshold
  && a.Busy_beaver.num_reject_all = b.Busy_beaver.num_reject_all
  && a.Busy_beaver.best_eta = b.Busy_beaver.best_eta
  && a.Busy_beaver.histogram = b.Busy_beaver.histogram
  && Option.map (fun p -> p.Population.name) a.Busy_beaver.best
     = Option.map (fun p -> p.Population.name) b.Busy_beaver.best

(* aggregate equality only: between pruned and unpruned scans the best
   protocol may be a different (isomorphic) member of the same orbit *)
let aggregates_eq (a : Busy_beaver.scan_result) (b : Busy_beaver.scan_result) =
  a.Busy_beaver.num_protocols = b.Busy_beaver.num_protocols
  && a.Busy_beaver.num_threshold = b.Busy_beaver.num_threshold
  && a.Busy_beaver.num_reject_all = b.Busy_beaver.num_reject_all
  && a.Busy_beaver.best_eta = b.Busy_beaver.best_eta
  && a.Busy_beaver.histogram = b.Busy_beaver.histogram

(* -- Symmetry: protocol relabelling is invisible to Eta_search ------------- *)

(* relabel the states of [p] by the permutation [sigma] (the input
   state moves too, so this is a protocol isomorphism) *)
let permute_protocol p sigma =
  let n = Population.num_states p in
  let states = Array.make n "" in
  Array.iteri (fun s name -> states.(sigma.(s)) <- name) p.Population.states;
  let output = Array.make n false in
  Array.iteri (fun s b -> output.(sigma.(s)) <- b) p.Population.output;
  Population.make
    ~name:(p.Population.name ^ "-perm")
    ~states
    ~transitions:
      (Array.to_list
         (Array.map
            (fun { Population.pre = a, b; post = a', b' } ->
              (sigma.(a), sigma.(b), sigma.(a'), sigma.(b')))
            p.Population.transitions))
    ~inputs:[ ("x", sigma.(p.Population.input_map.(0)) ) ]
    ~output ()

let nth_permutation n k =
  (* Lehmer decode of k into a permutation of 0..n-1 *)
  let avail = ref (List.init n Fun.id) in
  let k = ref k in
  Array.init n (fun i ->
      let remaining = n - i in
      let rec fact m = if m <= 1 then 1 else m * fact (m - 1) in
      let f = fact (remaining - 1) in
      let idx = !k / f mod remaining in
      k := !k mod f;
      let x = List.nth !avail idx in
      avail := List.filter (( <> ) x) !avail;
      x)

let eta_perm_invariance_prop =
  prop "Eta_search.find is invariant under state relabelling" ~count:30
    QCheck.(triple (int_range 0 46655) (int_range 1 7) (int_range 0 5))
    (fun (assignment, output_bits, pidx) ->
      let p = Busy_beaver.protocol_of_code ~n:3 ~assignment ~output_bits in
      let sigma = nth_permutation 3 pidx in
      let p' = permute_protocol p sigma in
      Eta_search.find p ~max_input:8 = Eta_search.find p' ~max_input:8)

(* -- Symmetry: group and orbit structure ----------------------------------- *)

let test_symmetry_order () =
  List.iter
    (fun (n, order) ->
      Alcotest.(check int)
        (Printf.sprintf "|Stab(0)| for n=%d" n)
        order
        (Busy_beaver.Symmetry.order (Busy_beaver.Symmetry.make n)))
    [ (1, 1); (2, 1); (3, 2); (4, 6) ]

(* summing the orbit sizes over the canonical codes tiles the full code
   space — this is exactly why orbit-weighted counts are exact *)
let test_orbit_weights_partition () =
  let sym = Busy_beaver.Symmetry.make 3 in
  let total = ref 0 in
  let canonical = ref 0 in
  for assignment = 0 to 46655 do
    for output_bits = 0 to 7 do
      match Busy_beaver.Symmetry.canonical_weight sym ~assignment ~output_bits with
      | Some w ->
        total := !total + w;
        incr canonical
      | None -> ()
    done
  done;
  Alcotest.(check int) "weights tile the space"
    (Busy_beaver.num_deterministic_protocols 3)
    !total;
  Alcotest.(check bool) "pruning is real" true
    (!canonical < Busy_beaver.num_deterministic_protocols 3)

let orbit_consistency_prop =
  prop "orbit members agree on the canonical code" ~count:100
    QCheck.(pair (int_range 0 46655) (int_range 0 7))
    (fun (assignment, output_bits) ->
      let sym = Busy_beaver.Symmetry.make 3 in
      let canon = Busy_beaver.Symmetry.canonical sym ~assignment ~output_bits in
      let orbit = Busy_beaver.Symmetry.orbit sym ~assignment ~output_bits in
      List.mem canon orbit
      && List.for_all (fun c -> canon <= c) orbit
      && List.for_all
           (fun (a, o) ->
             Busy_beaver.Symmetry.canonical sym ~assignment:a ~output_bits:o
             = canon)
           orbit
      && (Busy_beaver.Symmetry.canonical_weight sym ~assignment ~output_bits
          <> None)
         = ((assignment, output_bits) = canon))

(* -- Pruning changes no aggregate ------------------------------------------ *)

let test_prune_exact_n2 () =
  let pruned = Busy_beaver.scan ~n:2 ~max_input:10 ~prune:true () in
  let unpruned = Busy_beaver.scan ~n:2 ~max_input:10 ~prune:false () in
  Alcotest.(check bool) "full n=2 sweep identical" true
    (aggregates_eq pruned unpruned);
  Alcotest.(check int) "counts the whole space" 108
    pruned.Busy_beaver.num_protocols

let test_prune_exact_n3_sampled () =
  let pruned =
    Busy_beaver.scan ~n:3 ~max_input:8 ~sample:(400, 11) ~prune:true ()
  in
  let unpruned =
    Busy_beaver.scan ~n:3 ~max_input:8 ~sample:(400, 11) ~prune:false ()
  in
  Alcotest.(check bool) "sampled n=3 aggregates identical" true
    (aggregates_eq pruned unpruned)

(* -- Determinism across the domain pool ------------------------------------ *)

let test_jobs_invariance_exhaustive () =
  let reference = Busy_beaver.scan ~n:2 ~max_input:10 ~jobs:1 () in
  List.iter
    (fun (jobs, chunk) ->
      let r = Busy_beaver.scan ~n:2 ~max_input:10 ~jobs ~chunk () in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d chunk=%d identical" jobs chunk)
        true (result_eq reference r))
    [ (2, 1024); (4, 7); (3, 1); (1, 5) ]

let test_jobs_invariance_sampled () =
  let reference =
    Busy_beaver.scan ~n:3 ~max_input:8 ~sample:(300, 5) ~jobs:1 ()
  in
  List.iter
    (fun (jobs, chunk) ->
      let r =
        Busy_beaver.scan ~n:3 ~max_input:8 ~sample:(300, 5) ~jobs ~chunk ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d chunk=%d identical" jobs chunk)
        true (result_eq reference r))
    [ (2, 64); (4, 17) ]

(* guided self-scheduling repartitions the chunks (sizes descend from
   [chunk] to 1) but the index-ordered reduce makes the aggregate
   jobs- and schedule-invariant all the same *)
let test_guided_schedule_invariance () =
  let reference = Busy_beaver.scan ~n:2 ~max_input:10 ~jobs:1 () in
  List.iter
    (fun (jobs, chunk) ->
      let r =
        Busy_beaver.scan ~n:2 ~max_input:10 ~jobs ~chunk ~schedule:`Guided ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "guided jobs=%d chunk=%d identical" jobs chunk)
        true (result_eq reference r))
    [ (1, 1024); (2, 16); (4, 7); (3, 64) ]

(* the guided partition is a pure function of (tasks, jobs, chunk):
   descending sizes, clamped to [1, chunk], covering the range exactly *)
let guided_boundaries_prop =
  prop "guided boundaries partition the range with descending sizes"
    ~count:200
    QCheck.(triple (int_range 0 5000) (int_range 1 16) (int_range 1 512))
    (fun (tasks, jobs, chunk) ->
      let bounds = Pool.boundaries `Guided ~tasks ~jobs ~chunk in
      let contiguous =
        Array.to_list bounds
        |> List.fold_left
             (fun (ok, expect) (lo, hi) ->
               (ok && lo = expect && hi > lo && hi - lo <= chunk, hi))
             (true, 0)
      in
      fst contiguous
      && snd contiguous = tasks
      && (* sizes never increase *)
      (let sizes = Array.map (fun (lo, hi) -> hi - lo) bounds in
       let ok = ref true in
       for i = 0 to Array.length sizes - 2 do
         if sizes.(i) < sizes.(i + 1) then ok := false
       done;
       !ok))

(* the sampled stream is per-index, so it is also jobs-independent when
   pruning rewrites each draw to its canonical representative *)
let test_jobs_invariance_sampled_unpruned () =
  let a =
    Busy_beaver.scan ~n:3 ~max_input:8 ~sample:(200, 9) ~prune:false ~jobs:1 ()
  in
  let b =
    Busy_beaver.scan ~n:3 ~max_input:8 ~sample:(200, 9) ~prune:false ~jobs:4
      ~chunk:23 ()
  in
  Alcotest.(check bool) "unpruned sampled identical" true (result_eq a b)

(* -- Pool ------------------------------------------------------------------- *)

let test_pool_covers_every_index () =
  List.iter
    (fun (jobs, chunk) ->
      let tasks = 101 in
      let hits = Array.make tasks 0 in
      let stats =
        Pool.run ~jobs ~chunk ~tasks (fun ~lo ~hi ->
            for i = lo to hi - 1 do
              hits.(i) <- hits.(i) + 1
            done)
      in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d chunk=%d: each index once" jobs chunk)
        true
        (Array.for_all (( = ) 1) hits);
      let num_chunks = (tasks + chunk - 1) / chunk in
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d chunk=%d: chunk tally" jobs chunk)
        num_chunks
        (Array.fold_left ( + ) 0 stats.Pool.chunks))
    [ (1, 1); (2, 7); (4, 16); (8, 1024) ]

let test_pool_clamps_jobs () =
  let stats = Pool.run ~jobs:16 ~chunk:1 ~tasks:3 (fun ~lo:_ ~hi:_ -> ()) in
  Alcotest.(check int) "never more domains than tasks" 3 stats.Pool.jobs;
  let stats = Pool.run ~jobs:0 ~chunk:1 ~tasks:3 (fun ~lo:_ ~hi:_ -> ()) in
  Alcotest.(check int) "at least one domain" 1 stats.Pool.jobs

(* -- Pool fault isolation ---------------------------------------------------- *)

exception Boom of int

(* Under [`Fail] the poisoned chunk's exception must re-raise out of
   [run] with every domain joined first. 200 iterations x 4 spawned
   workers would exhaust the runtime's domain limit (~128 concurrent)
   within a few iterations if any join leaked, so merely finishing this
   loop is the leak assertion. *)
let test_pool_fail_joins_all_domains () =
  for _ = 1 to 200 do
    match
      Pool.run ~jobs:4 ~chunk:4 ~tasks:64 (fun ~lo ~hi:_ ->
          if lo / 4 = 7 then raise (Boom 7))
    with
    | _ -> Alcotest.fail "poisoned chunk did not raise"
    | exception Boom 7 -> ()
  done

let test_pool_fail_is_deterministic () =
  (* a single poisoned chunk is re-raised identically on every run and
     every jobs setting — first-failure-wins has only one candidate *)
  List.iter
    (fun jobs ->
      match
        Pool.run ~jobs ~chunk:8 ~tasks:80 (fun ~lo ~hi:_ ->
            if lo / 8 = 5 then raise (Boom (lo / 8)))
      with
      | _ -> Alcotest.fail "poisoned chunk did not raise"
      | exception Boom i ->
        Alcotest.(check int)
          (Printf.sprintf "jobs=%d re-raises the poisoned chunk" jobs)
          5 i)
    [ 1; 2; 4 ]

(* Skip/Retry: the batch completes, the failures are reported, and the
   surviving per-task results plus the failure accounting are identical
   across every jobs setting. The task body is deterministic, so a
   retried chunk fails on every attempt and each attempt counts. *)
let pool_fault_determinism_prop =
  prop "Skip/Retry aggregates are jobs-invariant under injected faults"
    ~count:40
    QCheck.(
      quad (int_range 1 150) (int_range 1 16) (int_range 0 149)
        (option (int_range 0 2)))
    (fun (tasks, chunk, poison, retries) ->
      let poison = poison mod tasks in
      let policy =
        match retries with None -> `Skip | Some n -> `Retry n
      in
      let run_with jobs =
        let acc = Array.make tasks 0 in
        let stats =
          Pool.run ~jobs ~chunk ~on_task_error:policy ~tasks (fun ~lo ~hi ->
              for i = lo to hi - 1 do
                acc.(i) <- (i * i) + 1
              done;
              if lo <= poison && poison < hi then raise (Boom poison))
        in
        let failed_chunks =
          List.map (fun f -> f.Pool.chunk_index) stats.Pool.failures
        in
        (acc, stats.Pool.task_errors, failed_chunks, stats.Pool.cancelled)
      in
      let reference = run_with 1 in
      let attempts = match policy with `Skip -> 1 | `Retry n -> 1 + n in
      let _, task_errors, failed_chunks, cancelled = reference in
      task_errors = attempts
      && failed_chunks = [ poison / chunk ]
      && (not cancelled)
      && List.for_all (fun jobs -> run_with jobs = reference) [ 2; 4 ])

let test_pool_should_stop_cancels () =
  let claimed = Atomic.make 0 in
  let stats =
    Pool.run ~jobs:1 ~chunk:1 ~tasks:100
      ~should_stop:(fun () -> Atomic.get claimed >= 5)
      (fun ~lo:_ ~hi:_ -> Atomic.incr claimed)
  in
  Alcotest.(check bool) "cancelled flag set" true stats.Pool.cancelled;
  Alcotest.(check bool) "stopped early"
    true
    (Atomic.get claimed < 100)

(* -- Checkpoint/resume: kill at a random chunk, resume, compare ------------- *)

let with_temp_checkpoint f =
  let path = Filename.temp_file "bbscan" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let checkpoint_resume_prop =
  prop "interrupted scan resumes to the uninterrupted result" ~count:8
    QCheck.(pair (int_range 1 26) (int_range 1 4))
    (fun (kill_after, jobs) ->
      with_temp_checkpoint (fun path ->
          let reference = Busy_beaver.scan ~n:2 ~max_input:8 ~chunk:4 () in
          (* first run: the cancellation token fires after [kill_after]
             polls (one poll per chunk claim; the n=2 scan has 27 chunks
             at chunk=4), snapshotting every completed chunk *)
          let polls = Atomic.make 0 in
          let interrupted =
            Busy_beaver.scan ~n:2 ~max_input:8 ~chunk:4 ~jobs
              ~checkpoint:path ~checkpoint_every_chunks:1
              ~should_stop:(fun () ->
                Atomic.fetch_and_add polls 1 >= kill_after)
              ()
          in
          let resumed =
            Busy_beaver.scan ~n:2 ~max_input:8 ~chunk:4 ~jobs:1
              ~checkpoint:path ~resume:true ()
          in
          (* whether the first run was truly cut short or drained before
             the token was polled, the resumed result must equal the
             uninterrupted reference byte for byte *)
          interrupted.Busy_beaver.total_chunks = 27
          && result_eq resumed reference
          && resumed.Busy_beaver.completed_chunks
             = resumed.Busy_beaver.total_chunks
          && not resumed.Busy_beaver.interrupted))

let () =
  Alcotest.run "bbscan"
    [
      ( "symmetry",
        [
          Alcotest.test_case "group orders" `Quick test_symmetry_order;
          Alcotest.test_case "orbit weights partition" `Slow
            test_orbit_weights_partition;
          orbit_consistency_prop;
          eta_perm_invariance_prop;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "exact on full n=2" `Quick test_prune_exact_n2;
          Alcotest.test_case "exact on sampled n=3" `Quick
            test_prune_exact_n3_sampled;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "exhaustive scan" `Quick
            test_jobs_invariance_exhaustive;
          Alcotest.test_case "sampled scan" `Quick test_jobs_invariance_sampled;
          Alcotest.test_case "sampled scan, no pruning" `Quick
            test_jobs_invariance_sampled_unpruned;
          Alcotest.test_case "guided schedule" `Quick
            test_guided_schedule_invariance;
          guided_boundaries_prop;
        ] );
      ( "pool",
        [
          Alcotest.test_case "covers every index" `Quick
            test_pool_covers_every_index;
          Alcotest.test_case "clamps jobs" `Quick test_pool_clamps_jobs;
        ] );
      ( "faults",
        [
          Alcotest.test_case "Fail joins all domains (leak stress)" `Quick
            test_pool_fail_joins_all_domains;
          Alcotest.test_case "Fail re-raise is deterministic" `Quick
            test_pool_fail_is_deterministic;
          pool_fault_determinism_prop;
          Alcotest.test_case "should_stop cancels" `Quick
            test_pool_should_stop_cancels;
        ] );
      ("checkpoint", [ checkpoint_resume_prop ]);
    ]
