(* Tests for the sharded busy-beaver scan: the symmetry group really is
   a symmetry of the verification problem (relabelled protocols have the
   same threshold), pruning changes nothing observable, and aggregates
   are byte-identical across every jobs/chunk setting — the same
   determinism contract test_ensemble checks for the Monte-Carlo
   engine. *)

let prop name ?(count = 50) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* scan_result equality; [best] is compared by protocol name, which
   encodes the exact code the scan picked *)
let result_eq (a : Busy_beaver.scan_result) (b : Busy_beaver.scan_result) =
  a.Busy_beaver.num_protocols = b.Busy_beaver.num_protocols
  && a.Busy_beaver.num_threshold = b.Busy_beaver.num_threshold
  && a.Busy_beaver.num_reject_all = b.Busy_beaver.num_reject_all
  && a.Busy_beaver.best_eta = b.Busy_beaver.best_eta
  && a.Busy_beaver.histogram = b.Busy_beaver.histogram
  && Option.map (fun p -> p.Population.name) a.Busy_beaver.best
     = Option.map (fun p -> p.Population.name) b.Busy_beaver.best

(* aggregate equality only: between pruned and unpruned scans the best
   protocol may be a different (isomorphic) member of the same orbit *)
let aggregates_eq (a : Busy_beaver.scan_result) (b : Busy_beaver.scan_result) =
  a.Busy_beaver.num_protocols = b.Busy_beaver.num_protocols
  && a.Busy_beaver.num_threshold = b.Busy_beaver.num_threshold
  && a.Busy_beaver.num_reject_all = b.Busy_beaver.num_reject_all
  && a.Busy_beaver.best_eta = b.Busy_beaver.best_eta
  && a.Busy_beaver.histogram = b.Busy_beaver.histogram

(* -- Symmetry: protocol relabelling is invisible to Eta_search ------------- *)

(* relabel the states of [p] by the permutation [sigma] (the input
   state moves too, so this is a protocol isomorphism) *)
let permute_protocol p sigma =
  let n = Population.num_states p in
  let states = Array.make n "" in
  Array.iteri (fun s name -> states.(sigma.(s)) <- name) p.Population.states;
  let output = Array.make n false in
  Array.iteri (fun s b -> output.(sigma.(s)) <- b) p.Population.output;
  Population.make
    ~name:(p.Population.name ^ "-perm")
    ~states
    ~transitions:
      (Array.to_list
         (Array.map
            (fun { Population.pre = a, b; post = a', b' } ->
              (sigma.(a), sigma.(b), sigma.(a'), sigma.(b')))
            p.Population.transitions))
    ~inputs:[ ("x", sigma.(p.Population.input_map.(0)) ) ]
    ~output ()

let nth_permutation n k =
  (* Lehmer decode of k into a permutation of 0..n-1 *)
  let avail = ref (List.init n Fun.id) in
  let k = ref k in
  Array.init n (fun i ->
      let remaining = n - i in
      let rec fact m = if m <= 1 then 1 else m * fact (m - 1) in
      let f = fact (remaining - 1) in
      let idx = !k / f mod remaining in
      k := !k mod f;
      let x = List.nth !avail idx in
      avail := List.filter (( <> ) x) !avail;
      x)

let eta_perm_invariance_prop =
  prop "Eta_search.find is invariant under state relabelling" ~count:30
    QCheck.(triple (int_range 0 46655) (int_range 1 7) (int_range 0 5))
    (fun (assignment, output_bits, pidx) ->
      let p = Busy_beaver.protocol_of_code ~n:3 ~assignment ~output_bits in
      let sigma = nth_permutation 3 pidx in
      let p' = permute_protocol p sigma in
      Eta_search.find p ~max_input:8 = Eta_search.find p' ~max_input:8)

(* -- Symmetry: group and orbit structure ----------------------------------- *)

let test_symmetry_order () =
  List.iter
    (fun (n, order) ->
      Alcotest.(check int)
        (Printf.sprintf "|Stab(0)| for n=%d" n)
        order
        (Busy_beaver.Symmetry.order (Busy_beaver.Symmetry.make n)))
    [ (1, 1); (2, 1); (3, 2); (4, 6) ]

(* summing the orbit sizes over the canonical codes tiles the full code
   space — this is exactly why orbit-weighted counts are exact *)
let test_orbit_weights_partition () =
  let sym = Busy_beaver.Symmetry.make 3 in
  let total = ref 0 in
  let canonical = ref 0 in
  for assignment = 0 to 46655 do
    for output_bits = 0 to 7 do
      match Busy_beaver.Symmetry.canonical_weight sym ~assignment ~output_bits with
      | Some w ->
        total := !total + w;
        incr canonical
      | None -> ()
    done
  done;
  Alcotest.(check int) "weights tile the space"
    (Busy_beaver.num_deterministic_protocols 3)
    !total;
  Alcotest.(check bool) "pruning is real" true
    (!canonical < Busy_beaver.num_deterministic_protocols 3)

let orbit_consistency_prop =
  prop "orbit members agree on the canonical code" ~count:100
    QCheck.(pair (int_range 0 46655) (int_range 0 7))
    (fun (assignment, output_bits) ->
      let sym = Busy_beaver.Symmetry.make 3 in
      let canon = Busy_beaver.Symmetry.canonical sym ~assignment ~output_bits in
      let orbit = Busy_beaver.Symmetry.orbit sym ~assignment ~output_bits in
      List.mem canon orbit
      && List.for_all (fun c -> canon <= c) orbit
      && List.for_all
           (fun (a, o) ->
             Busy_beaver.Symmetry.canonical sym ~assignment:a ~output_bits:o
             = canon)
           orbit
      && (Busy_beaver.Symmetry.canonical_weight sym ~assignment ~output_bits
          <> None)
         = ((assignment, output_bits) = canon))

(* -- Pruning changes no aggregate ------------------------------------------ *)

let test_prune_exact_n2 () =
  let pruned = Busy_beaver.scan ~n:2 ~max_input:10 ~prune:true () in
  let unpruned = Busy_beaver.scan ~n:2 ~max_input:10 ~prune:false () in
  Alcotest.(check bool) "full n=2 sweep identical" true
    (aggregates_eq pruned unpruned);
  Alcotest.(check int) "counts the whole space" 108
    pruned.Busy_beaver.num_protocols

let test_prune_exact_n3_sampled () =
  let pruned =
    Busy_beaver.scan ~n:3 ~max_input:8 ~sample:(400, 11) ~prune:true ()
  in
  let unpruned =
    Busy_beaver.scan ~n:3 ~max_input:8 ~sample:(400, 11) ~prune:false ()
  in
  Alcotest.(check bool) "sampled n=3 aggregates identical" true
    (aggregates_eq pruned unpruned)

(* -- Determinism across the domain pool ------------------------------------ *)

let test_jobs_invariance_exhaustive () =
  let reference = Busy_beaver.scan ~n:2 ~max_input:10 ~jobs:1 () in
  List.iter
    (fun (jobs, chunk) ->
      let r = Busy_beaver.scan ~n:2 ~max_input:10 ~jobs ~chunk () in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d chunk=%d identical" jobs chunk)
        true (result_eq reference r))
    [ (2, 1024); (4, 7); (3, 1); (1, 5) ]

let test_jobs_invariance_sampled () =
  let reference =
    Busy_beaver.scan ~n:3 ~max_input:8 ~sample:(300, 5) ~jobs:1 ()
  in
  List.iter
    (fun (jobs, chunk) ->
      let r =
        Busy_beaver.scan ~n:3 ~max_input:8 ~sample:(300, 5) ~jobs ~chunk ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d chunk=%d identical" jobs chunk)
        true (result_eq reference r))
    [ (2, 64); (4, 17) ]

(* the sampled stream is per-index, so it is also jobs-independent when
   pruning rewrites each draw to its canonical representative *)
let test_jobs_invariance_sampled_unpruned () =
  let a =
    Busy_beaver.scan ~n:3 ~max_input:8 ~sample:(200, 9) ~prune:false ~jobs:1 ()
  in
  let b =
    Busy_beaver.scan ~n:3 ~max_input:8 ~sample:(200, 9) ~prune:false ~jobs:4
      ~chunk:23 ()
  in
  Alcotest.(check bool) "unpruned sampled identical" true (result_eq a b)

(* -- Pool ------------------------------------------------------------------- *)

let test_pool_covers_every_index () =
  List.iter
    (fun (jobs, chunk) ->
      let tasks = 101 in
      let hits = Array.make tasks 0 in
      let stats =
        Pool.run ~jobs ~chunk ~tasks (fun ~lo ~hi ->
            for i = lo to hi - 1 do
              hits.(i) <- hits.(i) + 1
            done)
      in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d chunk=%d: each index once" jobs chunk)
        true
        (Array.for_all (( = ) 1) hits);
      let num_chunks = (tasks + chunk - 1) / chunk in
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d chunk=%d: chunk tally" jobs chunk)
        num_chunks
        (Array.fold_left ( + ) 0 stats.Pool.chunks))
    [ (1, 1); (2, 7); (4, 16); (8, 1024) ]

let test_pool_clamps_jobs () =
  let stats = Pool.run ~jobs:16 ~chunk:1 ~tasks:3 (fun ~lo:_ ~hi:_ -> ()) in
  Alcotest.(check int) "never more domains than tasks" 3 stats.Pool.jobs;
  let stats = Pool.run ~jobs:0 ~chunk:1 ~tasks:3 (fun ~lo:_ ~hi:_ -> ()) in
  Alcotest.(check int) "at least one domain" 1 stats.Pool.jobs

let () =
  Alcotest.run "bbscan"
    [
      ( "symmetry",
        [
          Alcotest.test_case "group orders" `Quick test_symmetry_order;
          Alcotest.test_case "orbit weights partition" `Slow
            test_orbit_weights_partition;
          orbit_consistency_prop;
          eta_perm_invariance_prop;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "exact on full n=2" `Quick test_prune_exact_n2;
          Alcotest.test_case "exact on sampled n=3" `Quick
            test_prune_exact_n3_sampled;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "exhaustive scan" `Quick
            test_jobs_invariance_exhaustive;
          Alcotest.test_case "sampled scan" `Quick test_jobs_invariance_sampled;
          Alcotest.test_case "sampled scan, no pruning" `Quick
            test_jobs_invariance_sampled_unpruned;
        ] );
      ( "pool",
        [
          Alcotest.test_case "covers every index" `Quick
            test_pool_covers_every_index;
          Alcotest.test_case "clamps jobs" `Quick test_pool_clamps_jobs;
        ] );
    ]
