(* Tests for ω-vectors, up/down-closed sets, backward coverability and
   the exact stable-set computation (Sections 3 and the Lemma 3.1/3.2
   machinery), cross-checked against brute-force reachability. *)

let prop name ?(count = 60) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let mset l = Mset.of_array (Array.of_list l)

let random_protocol ~d ~seed =
  Protocol_gen.generate
    ~config:{ Protocol_gen.default with Protocol_gen.num_states = d }
    ~seed ()

(* -- Omega_vec ------------------------------------------------------------ *)

let test_omega_basic () =
  let v = Omega_vec.of_basis_element (mset [ 1; 0; 2 ]) [ 1 ] in
  Alcotest.(check bool) "member below" true (Omega_vec.member (mset [ 1; 7; 2 ]) v);
  Alcotest.(check bool) "not member" false (Omega_vec.member (mset [ 2; 0; 0 ]) v);
  Alcotest.(check int) "norm ignores omega" 2 (Omega_vec.norm_inf v);
  let b, s = Omega_vec.to_basis_element v in
  Alcotest.(check (list int)) "S round-trip" [ 1 ] s;
  Alcotest.(check bool) "B round-trip" true (Mset.equal b (mset [ 1; 0; 2 ]))

let test_omega_leq_meet () =
  let fin = Omega_vec.finite [| 1; 2 |] in
  let om = Omega_vec.of_basis_element (mset [ 1; 0 ]) [ 1 ] in
  Alcotest.(check bool) "fin <= (1,ω)" true (Omega_vec.leq fin om);
  Alcotest.(check bool) "(1,ω) <= fin fails" false (Omega_vec.leq om fin);
  let m = Omega_vec.meet fin om in
  Alcotest.(check bool) "meet" true
    (Omega_vec.equal m (Omega_vec.finite [| 1; 2 |]));
  Alcotest.(check bool) "omega not finite" false (Omega_vec.is_finite om)

let test_omega_rejects_negative () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Omega_vec.finite: negative coordinate") (fun () ->
      ignore (Omega_vec.finite [| -1 |]))

(* -- Upset ----------------------------------------------------------------- *)

let test_upset_minimization () =
  let u = Upset.of_elements 2 [ mset [ 2; 1 ]; mset [ 1; 1 ]; mset [ 3; 0 ] ] in
  Alcotest.(check int) "dominated dropped" 2 (Upset.size u);
  Alcotest.(check bool) "mem" true (Upset.mem (mset [ 5; 5 ]) u);
  Alcotest.(check bool) "not mem" false (Upset.mem (mset [ 0; 9 ]) u);
  Alcotest.(check int) "max norm" 3 (Upset.max_norm u)

let test_upset_add () =
  let u = Upset.of_elements 2 [ mset [ 2; 2 ] ] in
  Alcotest.(check bool) "covered add is None" true (Upset.add (mset [ 3; 3 ]) u = None);
  (match Upset.add (mset [ 3; 0 ]) u with
   | None -> Alcotest.fail "incomparable element rejected"
   | Some u' ->
     Alcotest.(check int) "incomparable element added" 2 (Upset.size u');
     Alcotest.(check bool) "subset" true (Upset.subset u u'));
  match Upset.add (mset [ 0; 1 ]) u with
  | None -> Alcotest.fail "dominating element rejected"
  | Some u' ->
    (* (0,1) lies below (2,2), so its up-closure swallows the old element *)
    Alcotest.(check int) "smaller element replaces" 1 (Upset.size u');
    Alcotest.(check bool) "subset" true (Upset.subset u u')

let test_upset_complement_roundtrip () =
  let u = Upset.of_elements 2 [ mset [ 2; 0 ]; mset [ 0; 3 ] ] in
  let comp = Upset.complement u in
  (* membership in complement = non-membership in upset, checked on a grid *)
  for a = 0 to 5 do
    for b = 0 to 5 do
      let c = mset [ a; b ] in
      let in_comp = List.exists (Omega_vec.member c) comp in
      if in_comp = Upset.mem c u then
        Alcotest.failf "complement wrong at (%d,%d)" a b
    done
  done

let test_upset_complement_edge_cases () =
  Alcotest.(check int) "complement of empty is everything" 1
    (List.length (Upset.complement (Upset.empty 3)));
  let everything = Upset.of_elements 2 [ Mset.zero 2 ] in
  Alcotest.(check (list int)) "complement of everything is empty" []
    (List.map (fun _ -> 0) (Upset.complement everything))

let arb_upset_and_point =
  QCheck.make
    ~print:(fun _ -> "<upset>")
    QCheck.Gen.(
      pair
        (list_size (int_range 1 5) (array_size (return 3) (int_bound 4)))
        (array_size (return 3) (int_bound 6)))

let complement_prop =
  prop "complement is exact complement" arb_upset_and_point (fun (els, pt) ->
      let u = Upset.of_elements 3 (List.map Mset.of_array els) in
      let comp = Upset.complement u in
      let c = Mset.of_array pt in
      List.exists (Omega_vec.member c) comp <> Upset.mem c u)

(* -- Downset ---------------------------------------------------------------- *)

let test_downset_basic () =
  let d =
    Downset.of_max_elements 2
      [ Omega_vec.of_basis_element (mset [ 2; 0 ]) [ 1 ]; Omega_vec.finite [| 3; 1 |] ]
  in
  Alcotest.(check int) "two max elements" 2 (Downset.size d);
  Alcotest.(check bool) "mem" true (Downset.mem (mset [ 1; 100 ]) d);
  Alcotest.(check bool) "not mem" false (Downset.mem (mset [ 4; 0 ]) d);
  Alcotest.(check int) "norm" 3 (Downset.norm d)

let test_downset_union_subset () =
  let v1 = Omega_vec.finite [| 1; 1 |] and v2 = Omega_vec.finite [| 2; 2 |] in
  let d1 = Downset.of_max_elements 2 [ v1 ] and d2 = Downset.of_max_elements 2 [ v2 ] in
  let u = Downset.union d1 d2 in
  Alcotest.(check int) "dominated dropped in union" 1 (Downset.size u);
  Alcotest.(check bool) "subset" true (Downset.subset d1 d2);
  Alcotest.(check bool) "equal to bigger" true (Downset.equal u d2)

(* -- Backward coverability --------------------------------------------------- *)

(* brute-force coverability on the explicit graph *)
let brute_coverable p c0 target =
  let g = Configgraph.explore p c0 in
  Configgraph.can_reach g ~src:g.Configgraph.root (fun c -> Mset.leq target c)

let test_coverable_flock () =
  let p = Flock.succinct 2 in
  let d = Population.num_states p in
  let top = Population.state_index p "v4" in
  (* 4 agents can cover the top state, 3 cannot *)
  Alcotest.(check bool) "4 covers top" true
    (Backward.coverable p ~from:(Population.initial_single p 4)
       ~target:(Mset.singleton d top));
  Alcotest.(check bool) "3 does not" false
    (Backward.coverable p ~from:(Population.initial_single p 3)
       ~target:(Mset.singleton d top))

let coverability_vs_brute_prop =
  prop "backward agrees with explicit search" ~count:40
    QCheck.(pair (int_range 2 8) (int_range 0 4))
    (fun (i, tgt) ->
      let p = Flock.succinct 2 in
      let d = Population.num_states p in
      let target = Mset.singleton d (tgt mod d) in
      let c0 = Population.initial_single p i in
      Backward.coverable p ~from:c0 ~target = brute_coverable p c0 target)

let test_pre_star_stats () =
  let p = Flock.succinct 2 in
  let d = Population.num_states p in
  let u = Upset.of_elements d [ Mset.singleton d (Population.state_index p "v4") ] in
  let result, stats = Backward.pre_star_stats p u in
  Alcotest.(check bool) "some iterations" true (stats.Backward.iterations > 0);
  Alcotest.(check bool) "target still inside" true (Upset.subset u result)

(* -- Stable sets -------------------------------------------------------------- *)

let brute_stable p g b =
  not
    (Configgraph.can_reach g ~src:g.Configgraph.root (fun c ->
         Population.output_of_config p c <> Some b))

let test_stable_sets_downward_closed () =
  (* Lemma 3.1: SC_b is downward closed — it is represented as a downset,
     so instead check agreement with brute force on all small configs. *)
  let p = Threshold.binary 5 in
  let a = Stable_sets.analyse p in
  let d = Population.num_states p in
  (* enumerate all configurations with <= 3 agents *)
  let all = ref [] in
  for q1 = 0 to d - 1 do
    for q2 = q1 to d - 1 do
      all := Mset.of_list d [ (q1, 1); (q2, 1) ] :: !all;
      for q3 = q2 to d - 1 do
        all := Mset.of_list d [ (q1, 1); (q2, 1); (q3, 1) ] :: !all
      done
    done
  done;
  List.iter
    (fun c ->
      let g = Configgraph.explore p c in
      List.iter
        (fun b ->
          if Stable_sets.is_stable a b c <> brute_stable p g b then
            Alcotest.failf "stability mismatch (b=%b) at %s" b
              (Format.asprintf "%a" (Population.pp_config p) c))
        [ true; false ])
    !all

let test_stable_sets_disjoint () =
  (* SC_0 and SC_1 share only configurations with no agents in
     output-relevant states... in fact a config in both would have to be
     simultaneously all-0 and all-1: only the empty one. *)
  let p = Flock.succinct 2 in
  let a = Stable_sets.analyse p in
  let d = Population.num_states p in
  for q = 0 to d - 1 do
    let c = Mset.singleton d q in
    if Stable_sets.is_stable a true c && Stable_sets.is_stable a false c then
      Alcotest.failf "singleton %d stable for both outputs" q
  done

let test_stable_union_basis () =
  let p = Flock.succinct 2 in
  let a = Stable_sets.analyse p in
  let sc = Stable_sets.stable_union a in
  Alcotest.(check int) "union basis size"
    (List.length (Downset.basis sc))
    (Downset.size sc);
  (* the all-accepting configuration is 1-stable *)
  let top = Population.state_index p "v4" in
  Alcotest.(check bool) "all-top is stable" true
    (Stable_sets.is_stable a true (Mset.of_list (Population.num_states p) [ (top, 9) ]))

let test_stable_sets_majority () =
  let p = Majority.protocol () in
  let a = Stable_sets.analyse p in
  let d = Population.num_states p in
  let ia = Population.state_index p "a" and ib = Population.state_index p "b" in
  let iA = Population.state_index p "A" and iB = Population.state_index p "B" in
  (* all-b and all-a-with-A are stable; mixed passives are not *)
  Alcotest.(check bool) "all-b 0-stable" true
    (Stable_sets.is_stable a false (Mset.of_list d [ (ib, 3) ]));
  Alcotest.(check bool) "A+a 1-stable" true
    (Stable_sets.is_stable a true (Mset.of_list d [ (iA, 1); (ia, 2) ]));
  Alcotest.(check bool) "a+b not 1-stable" false
    (Stable_sets.is_stable a true (Mset.of_list d [ (ia, 1); (ib, 1) ]));
  Alcotest.(check bool) "A+B not stable either way" false
    (Stable_sets.is_stable a true (Mset.of_list d [ (iA, 1); (iB, 1) ])
    || Stable_sets.is_stable a false (Mset.of_list d [ (iA, 1); (iB, 1) ]))

let stable_sets_random_prop =
  prop "stable sets match brute force on random protocols" ~count:25
    QCheck.(pair (int_range 0 2000) (int_range 2 5))
    (fun (seed, size) ->
      let p = random_protocol ~d:3 ~seed in
      let a = Stable_sets.analyse p in
      let ok = ref true in
      (* all configurations with [size] agents over 3 states *)
      for x = 0 to size do
        for y = 0 to size - x do
          let c = Mset.of_list 3 [ (0, x); (1, y); (2, size - x - y) ] in
          let g = Configgraph.explore p c in
          List.iter
            (fun b ->
              let brute =
                not
                  (Configgraph.can_reach g ~src:g.Configgraph.root (fun c' ->
                       Population.output_of_config p c' <> Some b))
              in
              if brute <> Stable_sets.is_stable a b c then ok := false)
            [ true; false ]
        done
      done;
      !ok)

let test_paper_norm_bound () =
  (* Lemma 3.2: the exact basis norm is (astronomically) below beta *)
  List.iter
    (fun e ->
      let p = e.Catalog.build () in
      if Population.num_states p <= 8 then begin
        let a = Stable_sets.analyse p in
        let n = Population.num_states p in
        let norm = Downset.norm (Stable_sets.stable_union a) in
        let beta = Factorial_bounds.beta n in
        Alcotest.(check bool)
          (e.Catalog.name ^ ": norm <= beta")
          true
          (Magnitude.compare (Magnitude.of_int norm) beta <= 0)
      end)
    (Catalog.default_entries ())

(* -- Karp–Miller -------------------------------------------------------------- *)

let test_km_matches_explicit () =
  (* on a fixed input the clover is exactly the downward closure of the
     reachable configurations *)
  let p = Flock.succinct 2 in
  let c0 = Population.initial_single p 4 in
  let cl = Karp_miller.downset p c0 in
  let g = Configgraph.explore p c0 in
  Array.iter
    (fun c ->
      if not (Downset.mem c cl) then
        Alcotest.failf "reachable configuration outside the clover")
    g.Configgraph.configs;
  (* and nothing of larger size sneaks in *)
  Alcotest.(check bool) "bounded norm" true (Downset.norm cl <= 4)

let km_vs_backward_prop =
  prop "Karp–Miller agrees with backward coverability" ~count:40
    QCheck.(triple (int_range 0 500) (int_range 2 6) (int_range 0 3))
    (fun (seed, i, q) ->
      let p = random_protocol ~d:4 ~seed in
      let d = Population.num_states p in
      let from = Population.initial_single p i in
      let target = Mset.singleton d (q mod d) in
      Karp_miller.coverable p ~from ~target = Backward.coverable p ~from ~target)

let test_km_parametric () =
  let p = Flock.succinct 3 in
  let cl = Karp_miller.clover_parametric p in
  (* every state is coverable from some input, so the parametric clover
     must dominate every singleton *)
  let d = Population.num_states p in
  for q = 0 to d - 1 do
    if not (List.exists (Omega_vec.member (Mset.singleton d q)) cl) then
      Alcotest.failf "state %d missing from parametric clover" q
  done

let test_km_parametric_dead_state () =
  let p =
    Population.complete
      (Population.make ~name:"dead"
         ~states:[| "x"; "dead" |]
         ~transitions:[ (0, 0, 0, 0) ]
         ~inputs:[ ("x", 0) ]
         ~output:[| false; true |] ())
  in
  let cl = Karp_miller.clover_parametric p in
  Alcotest.(check bool) "dead state not coverable" false
    (List.exists (Omega_vec.member (Mset.singleton 2 1)) cl)

let test_km_budget () =
  let p = Flock.succinct 2 in
  match Karp_miller.clover ~max_nodes:2 p (Population.initial_single p 6) with
  | _ -> Alcotest.fail "budget of 2 nodes not enforced"
  | exception Obs.Budget.Exceeded info ->
    Alcotest.(check string) "source" "karp_miller.clover" info.Obs.Budget.source;
    Alcotest.(check string) "resource" "nodes" info.Obs.Budget.resource;
    (match info.Obs.Budget.partial with
     | Karp_miller.Partial_clover vs ->
       (* the partial clover under-approximates: everything in it is
          genuinely reachable-downward, here just sanity-check shape *)
       Alcotest.(check bool) "partial clover non-empty" true (vs <> [])
     | _ -> Alcotest.fail "expected Partial_clover in the budget exception")

let () =
  Alcotest.run "coverability"
    [
      ( "omega-vec",
        [
          Alcotest.test_case "basics" `Quick test_omega_basic;
          Alcotest.test_case "leq and meet" `Quick test_omega_leq_meet;
          Alcotest.test_case "negatives rejected" `Quick test_omega_rejects_negative;
        ] );
      ( "upset",
        [
          Alcotest.test_case "minimization" `Quick test_upset_minimization;
          Alcotest.test_case "add" `Quick test_upset_add;
          Alcotest.test_case "complement grid" `Quick test_upset_complement_roundtrip;
          Alcotest.test_case "complement edges" `Quick test_upset_complement_edge_cases;
          complement_prop;
        ] );
      ( "downset",
        [
          Alcotest.test_case "basics" `Quick test_downset_basic;
          Alcotest.test_case "union/subset" `Quick test_downset_union_subset;
        ] );
      ( "backward",
        [
          Alcotest.test_case "flock coverable" `Quick test_coverable_flock;
          Alcotest.test_case "stats" `Quick test_pre_star_stats;
          coverability_vs_brute_prop;
        ] );
      ( "karp-miller",
        [
          Alcotest.test_case "matches explicit reachability" `Quick test_km_matches_explicit;
          Alcotest.test_case "parametric clover" `Quick test_km_parametric;
          Alcotest.test_case "parametric dead state" `Quick test_km_parametric_dead_state;
          Alcotest.test_case "budget" `Quick test_km_budget;
          km_vs_backward_prop;
        ] );
      ( "stable-sets",
        [
          Alcotest.test_case "vs brute force" `Quick test_stable_sets_downward_closed;
          Alcotest.test_case "disjointness" `Quick test_stable_sets_disjoint;
          Alcotest.test_case "union basis" `Quick test_stable_union_basis;
          Alcotest.test_case "majority" `Quick test_stable_sets_majority;
          Alcotest.test_case "norm below beta" `Quick test_paper_norm_bound;
          stable_sets_random_prop;
        ] );
    ]
