(* Tests for the distributed scan stack: the wire protocol round-trips
   through arbitrary packet fragmentation, the lease table's
   grant/complete/reassign bookkeeping is exact, v1 checkpoints still
   load as v2 ledgers, and — the contract everything else exists for —
   a scan distributed across workers that die at random moments merges
   to the byte-identical single-process result. The simulation props
   drive the exact code the real coordinator runs (Dist.Lease +
   Busy_beaver.scan_chunk); a separate smoke test forks real worker
   processes through Distributed_scan. *)

let prop name ?(count = 50) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let result_eq (a : Busy_beaver.scan_result) (b : Busy_beaver.scan_result) =
  a.Busy_beaver.num_protocols = b.Busy_beaver.num_protocols
  && a.Busy_beaver.num_threshold = b.Busy_beaver.num_threshold
  && a.Busy_beaver.num_reject_all = b.Busy_beaver.num_reject_all
  && a.Busy_beaver.best_eta = b.Busy_beaver.best_eta
  && a.Busy_beaver.histogram = b.Busy_beaver.histogram
  && Option.map (fun p -> p.Population.name) a.Busy_beaver.best
     = Option.map (fun p -> p.Population.name) b.Busy_beaver.best

(* -- Wire: serialisation and framing ---------------------------------------- *)

let sample_msgs =
  [
    (* v1-shaped Hello (no host, no stamp) and the full v2 one *)
    Dist.Wire.Hello { worker = "w0"; pid = 4242; host = ""; sent_s = None };
    Dist.Wire.Hello
      { worker = "w1"; pid = 17; host = "node-a"; sent_s = Some 12.5 };
    Dist.Wire.Welcome
      {
        config = Obs.Json.Obj [ ("n", Obs.Json.Int 2) ];
        config_hash = "abc123";
        epoch = 3;
        total_chunks = 27;
        telemetry = false;
      };
    Dist.Wire.Welcome
      {
        config = Obs.Json.Obj [ ("n", Obs.Json.Int 2) ];
        config_hash = "abc123";
        epoch = 3;
        total_chunks = 27;
        telemetry = true;
      };
    Dist.Wire.Grant { lo_chunk = 4; hi_chunk = 9; epoch = 3 };
    Dist.Wire.Result
      {
        chunk = 7;
        epoch = 3;
        state = Obs.Json.Obj [ ("scanned", Obs.Json.Int 16) ];
      };
    Dist.Wire.Heartbeat { worker = "w0"; sent_s = None; metrics = None };
    Dist.Wire.Heartbeat
      {
        worker = "w1";
        sent_s = Some 99.25;
        metrics =
          Some (Obs.Json.Obj [ ("dist.chunks_done", Obs.Json.Int 3) ]);
      };
    Dist.Wire.Events
      {
        worker = "w1";
        origin_s = 41.0;
        lines = [ {|{"ts_s":1.5,"ev":"worker.chunk"}|}; {|{"ts_s":2.0}|} ];
      };
    Dist.Wire.Shutdown;
  ]

let test_wire_roundtrip () =
  List.iter
    (fun m ->
      match Dist.Wire.of_json (Dist.Wire.to_json m) with
      | Ok m' -> Alcotest.(check bool) "round-trips" true (m = m')
      | Error e -> Alcotest.fail e)
    sample_msgs

let test_wire_v1_welcome_bytes () =
  (* a telemetry-off Welcome must be byte-identical to what a v1
     encoder wrote, so v1 readers never even see the new field *)
  match
    Dist.Wire.to_json
      (Dist.Wire.Welcome
         {
           config = Obs.Json.Obj [];
           config_hash = "h";
           epoch = 1;
           total_chunks = 2;
           telemetry = false;
         })
  with
  | Obs.Json.Obj fields ->
    Alcotest.(check bool) "no telemetry field when false" true
      (not (List.mem_assoc "telemetry" fields))
  | _ -> Alcotest.fail "Welcome did not encode as an object"

let test_wire_unknown_kind () =
  match Dist.Wire.of_json (Obs.Json.Obj [ ("msg", Obs.Json.String "frobnicate") ]) with
  | Ok (Dist.Wire.Unknown k) ->
    Alcotest.(check string) "kind surfaces" "frobnicate" k
  | Ok _ -> Alcotest.fail "unknown kind decoded as a known message"
  | Error e -> Alcotest.fail ("unknown kind must not be an error: " ^ e)

(* forward compatibility: a *newer* peer may add fields to any known
   message — decoders must skip what they do not know, exactly as the
   v2 decoder's lenient field handling promises. Inject junk fields at
   random positions into every sample message's JSON and require the
   identical decode. *)
let wire_unknown_fields_prop =
  prop "decoders skip unknown fields in known messages" ~count:100
    QCheck.(pair (int_range 1 4) (int_range 0 1000))
    (fun (extra, seed) ->
      let rng = Random.State.make [| seed |] in
      List.for_all
        (fun m ->
          match Dist.Wire.to_json m with
          | Obs.Json.Obj fields ->
            let junk =
              List.init extra (fun i ->
                  ( Printf.sprintf "x_future_%d_%d" i
                      (Random.State.int rng 1000),
                    match Random.State.int rng 3 with
                    | 0 -> Obs.Json.Int (Random.State.int rng 100)
                    | 1 -> Obs.Json.String "later"
                    | _ -> Obs.Json.Obj [ ("nested", Obs.Json.Bool true) ] ))
            in
            let fields =
              List.fold_left
                (fun acc j ->
                  let pos = Random.State.int rng (List.length acc + 1) in
                  List.filteri (fun i _ -> i < pos) acc
                  @ [ j ]
                  @ List.filteri (fun i _ -> i >= pos) acc)
                fields junk
            in
            Dist.Wire.of_json (Obs.Json.Obj fields) = Ok m
          | _ -> false)
        sample_msgs)

(* the stream arrives in arbitrary fragments: write the same message
   sequence through a pipe in pieces of every size and check the reader
   reassembles it exactly *)
let wire_fragmentation_prop =
  prop "reader reassembles arbitrarily fragmented streams" ~count:50
    QCheck.(int_range 1 40)
    (fun piece ->
      let rfd, wfd = Unix.pipe () in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close rfd with Unix.Unix_error _ -> ());
          try Unix.close wfd with Unix.Unix_error _ -> ())
        (fun () ->
          let bytes =
            String.concat ""
              (List.map
                 (fun m -> Obs.Json.to_string (Dist.Wire.to_json m) ^ "\n")
                 sample_msgs)
          in
          let pos = ref 0 in
          while !pos < String.length bytes do
            let len = Stdlib.min piece (String.length bytes - !pos) in
            let n =
              Unix.write_substring wfd bytes !pos len
            in
            pos := !pos + n
          done;
          Unix.close wfd;
          let rd = Dist.Wire.reader rfd in
          let got = ref [] in
          let rec pump () =
            match Dist.Wire.recv rd with
            | Some m ->
              got := m :: !got;
              pump ()
            | None -> ()
          in
          pump ();
          List.rev !got = sample_msgs))

(* -- Lease table ------------------------------------------------------------- *)

let now = 100.0

let test_lease_grant_lowest_first () =
  let t = Dist.Lease.create ~max_batch:4 ~total:20 ~completed:(fun i -> i < 3) () in
  Dist.Lease.register t ~worker:"a" ~now;
  (match Dist.Lease.grant t ~worker:"a" with
   | Some (lo, hi) ->
     Alcotest.(check int) "starts after the restored prefix" 3 lo;
     Alcotest.(check bool) "batch is bounded" true (hi - lo <= 4 && hi > lo)
   | None -> Alcotest.fail "no grant");
  Alcotest.(check int) "restored chunks count as done" 3
    (Dist.Lease.done_count t)

let test_lease_batches_descend () =
  let t = Dist.Lease.create ~max_batch:100 ~total:64 ~completed:(fun _ -> false) () in
  Dist.Lease.register t ~worker:"a" ~now;
  let sizes = ref [] in
  let rec go () =
    match Dist.Lease.grant t ~worker:"a" with
    | Some (lo, hi) ->
      sizes := (hi - lo) :: !sizes;
      for i = lo to hi - 1 do
        ignore (Dist.Lease.complete t ~chunk:i)
      done;
      go ()
    | None -> ()
  in
  go ();
  let sizes = List.rev !sizes in
  Alcotest.(check bool) "monotonically non-increasing" true
    (let rec mono = function
       | a :: (b :: _ as rest) -> a >= b && mono rest
       | _ -> true
     in
     mono sizes);
  Alcotest.(check int) "covers all chunks" 64 (List.fold_left ( + ) 0 sizes);
  Alcotest.(check int) "tail batches are single chunks" 1
    (List.nth sizes (List.length sizes - 1));
  Alcotest.(check bool) "scan completed" true (Dist.Lease.is_complete t)

let test_lease_fail_worker_reclaims () =
  let t = Dist.Lease.create ~max_batch:4 ~total:16 ~completed:(fun _ -> false) () in
  Dist.Lease.register t ~worker:"a" ~now;
  Dist.Lease.register t ~worker:"b" ~now;
  let a_lo, a_hi =
    match Dist.Lease.grant t ~worker:"a" with
    | Some r -> r
    | None -> Alcotest.fail "no grant for a"
  in
  ignore (Dist.Lease.complete t ~chunk:a_lo);
  let reclaimed = Dist.Lease.fail_worker t ~worker:"a" in
  Alcotest.(check (list int)) "uncompleted leases come back"
    (List.init (a_hi - a_lo - 1) (fun i -> a_lo + 1 + i))
    reclaimed;
  (* the reclaimed chunks are the lowest free ones, so b gets them next *)
  (match Dist.Lease.grant t ~worker:"b" with
   | Some (lo, _) ->
     Alcotest.(check int) "reassigned to the next hungry worker" (a_lo + 1) lo
   | None -> Alcotest.fail "no grant for b");
  Alcotest.(check (list string)) "dead worker is gone" [ "b" ]
    (Dist.Lease.workers t)

let test_lease_expire_only_leaseholders () =
  let t = Dist.Lease.create ~max_batch:2 ~total:8 ~completed:(fun _ -> false) () in
  Dist.Lease.register t ~worker:"busy" ~now;
  Dist.Lease.register t ~worker:"idle" ~now;
  ignore (Dist.Lease.grant t ~worker:"busy");
  (* both heartbeats are equally stale, but only the leaseholder expires *)
  let expired = Dist.Lease.expire t ~now:(now +. 60.0) ~timeout:10.0 in
  Alcotest.(check (list string)) "only the lease-holding worker expires"
    [ "busy" ] (List.map fst expired);
  Alcotest.(check (list string)) "idle worker survives" [ "idle" ]
    (Dist.Lease.workers t);
  (* a fresh heartbeat protects a leaseholder *)
  Dist.Lease.register t ~worker:"busy2" ~now:(now +. 60.0);
  ignore (Dist.Lease.grant t ~worker:"busy2");
  Dist.Lease.heartbeat t ~worker:"busy2" ~now:(now +. 100.0);
  Alcotest.(check int) "heartbeat keeps the lease alive" 0
    (List.length (Dist.Lease.expire t ~now:(now +. 105.0) ~timeout:10.0))

let test_lease_duplicate_complete () =
  let t = Dist.Lease.create ~total:4 ~completed:(fun _ -> false) () in
  Dist.Lease.register t ~worker:"a" ~now;
  ignore (Dist.Lease.grant t ~worker:"a");
  Alcotest.(check bool) "first completion is fresh" true
    (Dist.Lease.complete t ~chunk:0 = `Fresh);
  Alcotest.(check bool) "second completion is a duplicate" true
    (Dist.Lease.complete t ~chunk:0 = `Duplicate)

(* -- Checkpoint v1 -> v2 read compatibility ---------------------------------- *)

let test_checkpoint_v1_reads_as_v2 () =
  let v1 =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.String "ppcheckpoint/v1");
        ("config_hash", Obs.Json.String "deadbeef");
        ("config", Obs.Json.Obj [ ("n", Obs.Json.Int 2) ]);
        ("total_chunks", Obs.Json.Int 5);
        ( "chunks",
          Obs.Json.List
            [
              Obs.Json.Obj
                [
                  ("index", Obs.Json.Int 2);
                  ("state", Obs.Json.Obj [ ("scanned", Obs.Json.Int 7) ]);
                ];
            ] );
      ]
  in
  match Obs.Checkpoint.of_json v1 with
  | Error e -> Alcotest.fail e
  | Ok c ->
    Alcotest.(check int) "v1 loads at epoch 0" 0 (Obs.Checkpoint.epoch c);
    Alcotest.(check int) "completed chunks survive" 1 (Obs.Checkpoint.num_done c);
    Alcotest.(check bool) "lease table is empty" true
      (List.init 5 (fun i -> Obs.Checkpoint.lease c i)
       |> List.for_all (( = ) None));
    (* and re-saving emits v2, which round-trips with leases *)
    ignore (Obs.Checkpoint.bump_epoch c);
    Obs.Checkpoint.set_lease c 3 ~holder:"w1";
    (match Obs.Checkpoint.of_json (Obs.Checkpoint.to_json c) with
     | Error e -> Alcotest.fail e
     | Ok c' ->
       Alcotest.(check int) "epoch round-trips" 1 (Obs.Checkpoint.epoch c');
       Alcotest.(check bool) "lease round-trips" true
         (Obs.Checkpoint.lease c' 3
          = Some { Obs.Checkpoint.holder = "w1"; lease_epoch = 1 });
       Alcotest.(check (list int)) "leased_to agrees" [ 3 ]
         (Obs.Checkpoint.leased_to c' ~holder:"w1"))

let test_mismatch_diff () =
  let expected =
    Obs.Json.Obj [ ("n", Obs.Json.Int 3); ("chunk", Obs.Json.Int 16) ]
  in
  let found =
    Obs.Json.Obj [ ("n", Obs.Json.Int 2); ("chunk", Obs.Json.Int 16) ]
  in
  let diff = Obs.Checkpoint.config_diff ~expected ~found in
  Alcotest.(check (list string)) "only the changed field" [ "n" ]
    (List.map (fun d -> d.Obs.Checkpoint.field) diff);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let msg = Obs.Checkpoint.mismatch_message ~path:"x.ckpt" diff in
  Alcotest.(check bool) "message shows both values" true
    (contains msg "run has 3" && contains msg "snapshot has 2")

(* -- Simulated distributed scan: kill a random worker at a random chunk ----- *)

(* The per-chunk work and the merge are the real ones
   (Busy_beaver.scan_chunk / result_of_chunks); only the transport is
   simulated — scheduling decisions, the kill moment and the recovery
   all run through Dist.Lease exactly as the coordinator drives it. *)
let simulate_with_kill ~plan ~reference ~num_workers ~kill_worker ~kill_after
    ~choose =
  let nc = Busy_beaver.plan_chunks plan in
  let slots = Array.make nc None in
  let lease =
    Dist.Lease.create ~max_batch:3 ~total:nc ~completed:(fun _ -> false) ()
  in
  let queues = Array.make num_workers [] in
  let live = Array.make num_workers true in
  let done_by = Array.make num_workers 0 in
  let killed = ref false in
  for w = 0 to num_workers - 1 do
    Dist.Lease.register lease ~worker:(string_of_int w) ~now:0.0
  done;
  let steps = ref 0 in
  while (not (Dist.Lease.is_complete lease)) && !steps < 100_000 do
    incr steps;
    (* top up idle live workers, as the coordinator's feed_idle does *)
    for w = 0 to num_workers - 1 do
      if live.(w) && queues.(w) = [] then
        match Dist.Lease.grant lease ~worker:(string_of_int w) with
        | Some (lo, hi) -> queues.(w) <- List.init (hi - lo) (fun i -> lo + i)
        | None -> ()
    done;
    let ready =
      List.filter
        (fun w -> live.(w) && queues.(w) <> [])
        (List.init num_workers Fun.id)
    in
    match ready with
    | [] -> Alcotest.fail "deadlock: chunks outstanding but no ready worker"
    | _ ->
      let w = List.nth ready (choose (List.length ready)) in
      if (not !killed) && w = kill_worker && done_by.(w) >= kill_after then begin
        (* SIGKILL: everything still queued goes back to the pool *)
        ignore (Dist.Lease.fail_worker lease ~worker:(string_of_int w));
        live.(w) <- false;
        queues.(w) <- [];
        killed := true
      end
      else begin
        match queues.(w) with
        | [] -> assert false
        | c :: rest ->
          queues.(w) <- rest;
          if slots.(c) = None then
            slots.(c) <- Some (Busy_beaver.scan_chunk plan c);
          ignore (Dist.Lease.complete lease ~chunk:c);
          done_by.(w) <- done_by.(w) + 1
      end
  done;
  Dist.Lease.is_complete lease
  && result_eq (Busy_beaver.result_of_chunks plan slots) reference

(* one plan and reference for all 200 iterations — the prop varies the
   worker count, the victim, the kill moment and the interleaving *)
let sim_plan = Busy_beaver.plan ~chunk:4 ~max_input:8 ~n:2 ()
let sim_reference = Busy_beaver.scan ~chunk:4 ~max_input:8 ~n:2 ()

let kill_recovery_prop =
  prop "killed worker's chunks reassign; merged result byte-identical"
    ~count:200
    QCheck.(
      quad (int_range 2 5) (int_range 0 4) (int_range 0 12) (int_range 0 1000))
    (fun (num_workers, kill_worker, kill_after, seed) ->
      let kill_worker = kill_worker mod num_workers in
      let rng = Random.State.make [| seed |] in
      let choose n = Random.State.int rng n in
      simulate_with_kill ~plan:sim_plan ~reference:sim_reference ~num_workers
        ~kill_worker ~kill_after ~choose)

(* -- Clock-offset alignment -------------------------------------------------- *)

(* Telemetry.align_line is the pure core of the coordinator's merged
   timeline: a worker's capture sink stamps absolute worker-clock
   seconds, and alignment adds the (min-filtered) offset estimate to
   land on the coordinator's clock. With exact offsets the merged
   timeline must be globally monotone and — canonicalized by sorting —
   invariant under how the events were partitioned across workers. *)
let align_canonical ~num_workers ~offsets ~assign events =
  (* worker w's local view of global instant t is t + offsets.(w);
     align with offset_s = -offsets.(w) (the exact estimate when the
     minimum delivery delay is 0) *)
  let aligned =
    List.concat
      (List.init num_workers (fun w ->
           let mine =
             List.filter (fun (i, _) -> assign i = w) events
           in
           List.filter_map
             (fun (i, t) ->
               let line =
                 Obs.Json.to_string
                   (Obs.Json.Obj
                      [
                        ("ts_s", Obs.Json.Float (t +. offsets.(w)));
                        ("ev", Obs.Json.String (Printf.sprintf "e%d" i));
                      ])
               in
               Option.map
                 (fun j -> (i, j))
                 (Dist.Telemetry.align_line ~offset_s:(-.offsets.(w))
                    ~origin_s:0.0 ~sink_origin_s:0.0
                    ~tags:[ ("worker", Obs.Json.String (string_of_int w)) ]
                    line))
             mine))
  in
  let ts_of j =
    match j with
    | Obs.Json.Obj f -> (
        match List.assoc_opt "ts_s" f with
        | Some (Obs.Json.Float t) -> t
        | Some (Obs.Json.Int t) -> float_of_int t
        | _ -> nan)
    | _ -> nan
  in
  List.sort compare (List.map (fun (i, j) -> (ts_of j, i)) aligned)

let offset_alignment_prop =
  prop "skewed worker streams align to one monotone, stable timeline"
    ~count:100
    QCheck.(
      quad (int_range 1 5) (int_range 0 1000) (int_range 1 30) (int_range 0 1000))
    (fun (num_workers, off_seed, num_events, assign_seed) ->
      let rng = Random.State.make [| off_seed |] in
      let offsets =
        Array.init num_workers (fun _ ->
            Random.State.float rng 10.0 -. 5.0)
      in
      let events =
        List.init num_events (fun i -> (i, float_of_int i *. 0.125))
      in
      let arng = Random.State.make [| assign_seed |] in
      let assignment =
        Array.init num_events (fun _ -> Random.State.int arng num_workers)
      in
      let split =
        align_canonical ~num_workers ~offsets
          ~assign:(fun i -> assignment.(i))
          events
      in
      (* canonical reference: everything on one unskewed worker *)
      let whole =
        align_canonical ~num_workers:1 ~offsets:[| 0.0 |]
          ~assign:(fun _ -> 0)
          events
      in
      let rec monotone = function
        | (a, _) :: ((b, _) :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      monotone split
      && List.map snd split = List.map snd whole
      && List.for_all2
           (fun (ta, _) (tb, _) -> Float.abs (ta -. tb) < 1e-9)
           split whole)

let test_align_skips_headers_and_tags () =
  let t = Dist.Telemetry.create () in
  let aligned =
    Dist.Telemetry.align_events t ~worker:"w9" ~origin_s:0.0 ~sink_origin_s:0.0
      [
        {|{"schema":"ppevents/v1","t0_utc":"x"}|};
        {|{"ts_s":1.0,"ev":"worker.chunk"}|};
        "not json at all";
      ]
  in
  Alcotest.(check int) "header and junk dropped, record kept" 1
    (List.length aligned);
  match aligned with
  | [ Obs.Json.Obj fields ] ->
    Alcotest.(check bool) "worker tag appended" true
      (List.assoc_opt "worker" fields = Some (Obs.Json.String "w9"))
  | _ -> Alcotest.fail "expected one object"

let test_offset_min_filter () =
  let t = Dist.Telemetry.create () in
  (* worker clock = coordinator clock + 3: sent stamps are +3, and
     delivery delays shrink over time — the estimate must keep the
     minimum, converging on -3 + min delay *)
  Dist.Telemetry.join t ~worker:"w" ~host:"h" ~pid:1
    ~sent_s:(Some (10.0 +. 3.0)) ~now:(10.0 +. 0.5);
  Dist.Telemetry.heartbeat t ~worker:"w" ~sent_s:(Some (20.0 +. 3.0))
    ~metrics:None ~now:(20.0 +. 0.01);
  Dist.Telemetry.heartbeat t ~worker:"w" ~sent_s:(Some (30.0 +. 3.0))
    ~metrics:None ~now:(30.0 +. 0.2);
  let est = Dist.Telemetry.offset t ~worker:"w" in
  Alcotest.(check bool) "min-filtered to the best sample" true
    (Float.abs (est -. (-3.0 +. 0.01)) < 1e-9)

(* -- Real processes: fork workers through Distributed_scan ------------------- *)

let test_fork_smoke () =
  let plan = Busy_beaver.plan ~chunk:8 ~max_input:8 ~n:2 () in
  let reference = Busy_beaver.scan ~chunk:8 ~max_input:8 ~n:2 () in
  let o = Distributed_scan.coordinate ~workers:2 ~plan () in
  Alcotest.(check bool) "result identical to single-process" true
    (result_eq o.Distributed_scan.result reference);
  Alcotest.(check bool) "not interrupted" true
    (not o.Distributed_scan.result.Busy_beaver.interrupted);
  Alcotest.(check int) "both workers joined" 2
    o.Distributed_scan.stats.Dist.Coordinator.workers_seen

let test_fork_chaos_kill () =
  let plan = Busy_beaver.plan ~chunk:4 ~max_input:8 ~n:2 () in
  let reference = Busy_beaver.scan ~chunk:4 ~max_input:8 ~n:2 () in
  let o =
    Distributed_scan.coordinate ~workers:3 ~chaos_kill:(1, 1) ~plan ()
  in
  Alcotest.(check bool) "result identical despite the SIGKILL" true
    (result_eq o.Distributed_scan.result reference);
  Alcotest.(check int) "the killed worker was noticed" 1
    o.Distributed_scan.stats.Dist.Coordinator.workers_lost

let with_temp_checkpoint f =
  let path = Filename.temp_file "distscan" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_fork_checkpoint_epochs () =
  with_temp_checkpoint (fun path ->
      let plan = Busy_beaver.plan ~chunk:8 ~max_input:8 ~n:2 () in
      let o1 = Distributed_scan.coordinate ~workers:1 ~checkpoint:path ~plan () in
      Alcotest.(check bool) "first run completes" true
        (not o1.Distributed_scan.result.Busy_beaver.interrupted);
      (match Obs.Checkpoint.load path with
       | Error e -> Alcotest.fail e
       | Ok c ->
         Alcotest.(check int) "first adoption is epoch 1" 1
           (Obs.Checkpoint.epoch c);
         Alcotest.(check int) "ledger is complete" (Obs.Checkpoint.num_done c)
           c.Obs.Checkpoint.total_chunks);
      (* resuming a complete ledger: adopt (epoch 2), nothing to scan,
         same result from the restored accumulators *)
      let o2 =
        Distributed_scan.coordinate ~workers:1 ~checkpoint:path ~resume:true
          ~plan ()
      in
      Alcotest.(check bool) "resumed result identical" true
        (result_eq o1.Distributed_scan.result o2.Distributed_scan.result);
      Alcotest.(check int) "no chunk re-scanned" 0
        o2.Distributed_scan.stats.Dist.Coordinator.chunks_done;
      match Obs.Checkpoint.load path with
      | Error e -> Alcotest.fail e
      | Ok c ->
        Alcotest.(check int) "second adoption bumped the epoch" 2
          (Obs.Checkpoint.epoch c))

let test_fork_telemetry () =
  let events_path = Filename.temp_file "distscan" ".events.jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove events_path with Sys_error _ -> ())
    (fun () ->
      let plan = Busy_beaver.plan ~chunk:4 ~max_input:8 ~n:2 () in
      let reference = Busy_beaver.scan ~chunk:4 ~max_input:8 ~n:2 () in
      Obs.Events.start_file events_path;
      let o =
        Fun.protect
          ~finally:(fun () -> Obs.Events.stop ())
          (fun () -> Distributed_scan.coordinate ~workers:2 ~plan ())
      in
      Alcotest.(check bool) "telemetry does not change the result" true
        (result_eq o.Distributed_scan.result reference);
      let fleet = o.Distributed_scan.stats.Dist.Coordinator.fleet in
      Alcotest.(check int) "both workers in the fleet summary" 2
        (List.length fleet);
      Alcotest.(check int) "fleet chunk counts sum to the total"
        o.Distributed_scan.stats.Dist.Coordinator.chunks_done
        (List.fold_left
           (fun acc s -> acc + s.Dist.Telemetry.s_chunks_done)
           0 fleet);
      (* the merged log: coordinator's own dist.* records plus the
         workers' forwarded worker.chunk records, worker-tagged *)
      let lines =
        In_channel.with_open_text events_path In_channel.input_lines
      in
      let records =
        List.filter_map
          (fun l ->
            match Obs.Json.parse l with
            | Ok (Obs.Json.Obj f) when not (List.mem_assoc "schema" f) ->
              Some f
            | _ -> None)
          lines
      in
      let ev_is name f =
        List.assoc_opt "ev" f = Some (Obs.Json.String name)
      in
      Alcotest.(check bool) "dist.worker_join recorded" true
        (List.exists (ev_is "dist.worker_join") records);
      let chunk_records = List.filter (ev_is "worker.chunk") records in
      Alcotest.(check bool) "forwarded worker.chunk records present" true
        (chunk_records <> []);
      Alcotest.(check bool) "every forwarded record is worker-tagged" true
        (List.for_all
           (fun f ->
             match List.assoc_opt "worker" f with
             | Some (Obs.Json.String _) -> true
             | _ -> false)
           chunk_records);
      (* and the same log feeds the fleet analytics *)
      let report = Obs.Fleet_stats.analyse lines in
      Alcotest.(check int) "fleet report sees both workers" 2
        (List.length report.Obs.Fleet_stats.workers);
      Alcotest.(check bool) "fleet markdown renders" true
        (String.length (Obs.Fleet_stats.to_markdown report) > 0))

let () =
  Alcotest.run "dist"
    [
      ( "wire",
        [
          Alcotest.test_case "message round-trip" `Quick test_wire_roundtrip;
          Alcotest.test_case "telemetry-off Welcome is v1-identical" `Quick
            test_wire_v1_welcome_bytes;
          Alcotest.test_case "unknown kind decodes as Unknown" `Quick
            test_wire_unknown_kind;
          wire_unknown_fields_prop;
          wire_fragmentation_prop;
        ] );
      ( "telemetry",
        [
          offset_alignment_prop;
          Alcotest.test_case "alignment skips headers, appends tags" `Quick
            test_align_skips_headers_and_tags;
          Alcotest.test_case "offset estimate is min-filtered" `Quick
            test_offset_min_filter;
        ] );
      ( "lease",
        [
          Alcotest.test_case "grants lowest free chunks" `Quick
            test_lease_grant_lowest_first;
          Alcotest.test_case "batch sizes descend" `Quick
            test_lease_batches_descend;
          Alcotest.test_case "failed worker's leases reclaim" `Quick
            test_lease_fail_worker_reclaims;
          Alcotest.test_case "expiry spares idle workers" `Quick
            test_lease_expire_only_leaseholders;
          Alcotest.test_case "duplicate completion detected" `Quick
            test_lease_duplicate_complete;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "v1 checkpoint reads as v2" `Quick
            test_checkpoint_v1_reads_as_v2;
          Alcotest.test_case "mismatch diff names the field" `Quick
            test_mismatch_diff;
        ] );
      ("recovery", [ kill_recovery_prop ]);
      ( "processes",
        [
          Alcotest.test_case "fork workers, identical result" `Quick
            test_fork_smoke;
          Alcotest.test_case "SIGKILL mid-scan, identical result" `Quick
            test_fork_chaos_kill;
          Alcotest.test_case "checkpoint epochs across adoptions" `Quick
            test_fork_checkpoint_epochs;
          Alcotest.test_case "fleet telemetry over fork workers" `Quick
            test_fork_telemetry;
        ] );
    ]
