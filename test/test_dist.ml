(* Tests for the distributed scan stack: the wire protocol round-trips
   through arbitrary packet fragmentation, the lease table's
   grant/complete/reassign bookkeeping is exact, v1 checkpoints still
   load as v2 ledgers, and — the contract everything else exists for —
   a scan distributed across workers that die at random moments merges
   to the byte-identical single-process result. The simulation props
   drive the exact code the real coordinator runs (Dist.Lease +
   Busy_beaver.scan_chunk); a separate smoke test forks real worker
   processes through Distributed_scan. *)

let prop name ?(count = 50) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let result_eq (a : Busy_beaver.scan_result) (b : Busy_beaver.scan_result) =
  a.Busy_beaver.num_protocols = b.Busy_beaver.num_protocols
  && a.Busy_beaver.num_threshold = b.Busy_beaver.num_threshold
  && a.Busy_beaver.num_reject_all = b.Busy_beaver.num_reject_all
  && a.Busy_beaver.best_eta = b.Busy_beaver.best_eta
  && a.Busy_beaver.histogram = b.Busy_beaver.histogram
  && Option.map (fun p -> p.Population.name) a.Busy_beaver.best
     = Option.map (fun p -> p.Population.name) b.Busy_beaver.best

(* -- Wire: serialisation and framing ---------------------------------------- *)

let sample_msgs =
  [
    (* v1-shaped Hello (no host, no stamp) and the full v2 one *)
    Dist.Wire.Hello { worker = "w0"; pid = 4242; host = ""; sent_s = None };
    Dist.Wire.Hello
      { worker = "w1"; pid = 17; host = "node-a"; sent_s = Some 12.5 };
    Dist.Wire.Welcome
      {
        config = Obs.Json.Obj [ ("n", Obs.Json.Int 2) ];
        config_hash = "abc123";
        epoch = 3;
        total_chunks = 27;
        telemetry = false;
      };
    Dist.Wire.Welcome
      {
        config = Obs.Json.Obj [ ("n", Obs.Json.Int 2) ];
        config_hash = "abc123";
        epoch = 3;
        total_chunks = 27;
        telemetry = true;
      };
    Dist.Wire.Grant { lo_chunk = 4; hi_chunk = 9; epoch = 3 };
    Dist.Wire.Result
      {
        chunk = 7;
        epoch = 3;
        state = Obs.Json.Obj [ ("scanned", Obs.Json.Int 16) ];
      };
    Dist.Wire.Heartbeat { worker = "w0"; sent_s = None; metrics = None };
    Dist.Wire.Heartbeat
      {
        worker = "w1";
        sent_s = Some 99.25;
        metrics =
          Some (Obs.Json.Obj [ ("dist.chunks_done", Obs.Json.Int 3) ]);
      };
    Dist.Wire.Events
      {
        worker = "w1";
        origin_s = 41.0;
        lines = [ {|{"ts_s":1.5,"ev":"worker.chunk"}|}; {|{"ts_s":2.0}|} ];
      };
    Dist.Wire.Shutdown;
  ]

let test_wire_roundtrip () =
  List.iter
    (fun m ->
      match Dist.Wire.of_json (Dist.Wire.to_json m) with
      | Ok m' -> Alcotest.(check bool) "round-trips" true (m = m')
      | Error e -> Alcotest.fail e)
    sample_msgs

let test_wire_v1_welcome_bytes () =
  (* a telemetry-off Welcome must be byte-identical to what a v1
     encoder wrote, so v1 readers never even see the new field *)
  match
    Dist.Wire.to_json
      (Dist.Wire.Welcome
         {
           config = Obs.Json.Obj [];
           config_hash = "h";
           epoch = 1;
           total_chunks = 2;
           telemetry = false;
         })
  with
  | Obs.Json.Obj fields ->
    Alcotest.(check bool) "no telemetry field when false" true
      (not (List.mem_assoc "telemetry" fields))
  | _ -> Alcotest.fail "Welcome did not encode as an object"

let test_wire_unknown_kind () =
  match Dist.Wire.of_json (Obs.Json.Obj [ ("msg", Obs.Json.String "frobnicate") ]) with
  | Ok (Dist.Wire.Unknown k) ->
    Alcotest.(check string) "kind surfaces" "frobnicate" k
  | Ok _ -> Alcotest.fail "unknown kind decoded as a known message"
  | Error e -> Alcotest.fail ("unknown kind must not be an error: " ^ e)

(* forward compatibility: a *newer* peer may add fields to any known
   message — decoders must skip what they do not know, exactly as the
   v2 decoder's lenient field handling promises. Inject junk fields at
   random positions into every sample message's JSON and require the
   identical decode. *)
let wire_unknown_fields_prop =
  prop "decoders skip unknown fields in known messages" ~count:100
    QCheck.(pair (int_range 1 4) (int_range 0 1000))
    (fun (extra, seed) ->
      let rng = Random.State.make [| seed |] in
      List.for_all
        (fun m ->
          match Dist.Wire.to_json m with
          | Obs.Json.Obj fields ->
            let junk =
              List.init extra (fun i ->
                  ( Printf.sprintf "x_future_%d_%d" i
                      (Random.State.int rng 1000),
                    match Random.State.int rng 3 with
                    | 0 -> Obs.Json.Int (Random.State.int rng 100)
                    | 1 -> Obs.Json.String "later"
                    | _ -> Obs.Json.Obj [ ("nested", Obs.Json.Bool true) ] ))
            in
            let fields =
              List.fold_left
                (fun acc j ->
                  let pos = Random.State.int rng (List.length acc + 1) in
                  List.filteri (fun i _ -> i < pos) acc
                  @ [ j ]
                  @ List.filteri (fun i _ -> i >= pos) acc)
                fields junk
            in
            Dist.Wire.of_json (Obs.Json.Obj fields) = Ok m
          | _ -> false)
        sample_msgs)

(* the stream arrives in arbitrary fragments: write the same message
   sequence through a pipe in pieces of every size and check the reader
   reassembles it exactly *)
let wire_fragmentation_prop =
  prop "reader reassembles arbitrarily fragmented streams" ~count:50
    QCheck.(int_range 1 40)
    (fun piece ->
      let rfd, wfd = Unix.pipe () in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close rfd with Unix.Unix_error _ -> ());
          try Unix.close wfd with Unix.Unix_error _ -> ())
        (fun () ->
          let bytes =
            String.concat ""
              (List.map
                 (fun m -> Obs.Json.to_string (Dist.Wire.to_json m) ^ "\n")
                 sample_msgs)
          in
          let pos = ref 0 in
          while !pos < String.length bytes do
            let len = Stdlib.min piece (String.length bytes - !pos) in
            let n =
              Unix.write_substring wfd bytes !pos len
            in
            pos := !pos + n
          done;
          Unix.close wfd;
          let rd = Dist.Wire.reader rfd in
          let got = ref [] in
          let rec pump () =
            match Dist.Wire.recv rd with
            | Some m ->
              got := m :: !got;
              pump ()
            | None -> ()
          in
          pump ();
          List.rev !got = sample_msgs))

(* -- Lease table ------------------------------------------------------------- *)

let now = 100.0

let test_lease_grant_lowest_first () =
  let t = Dist.Lease.create ~max_batch:4 ~total:20 ~completed:(fun i -> i < 3) () in
  Dist.Lease.register t ~worker:"a" ~now;
  (match Dist.Lease.grant t ~worker:"a" ~now with
   | Some (lo, hi) ->
     Alcotest.(check int) "starts after the restored prefix" 3 lo;
     Alcotest.(check bool) "batch is bounded" true (hi - lo <= 4 && hi > lo)
   | None -> Alcotest.fail "no grant");
  Alcotest.(check int) "restored chunks count as done" 3
    (Dist.Lease.done_count t)

let test_lease_batches_descend () =
  let t = Dist.Lease.create ~max_batch:100 ~total:64 ~completed:(fun _ -> false) () in
  Dist.Lease.register t ~worker:"a" ~now;
  let sizes = ref [] in
  let rec go () =
    match Dist.Lease.grant t ~worker:"a" ~now with
    | Some (lo, hi) ->
      sizes := (hi - lo) :: !sizes;
      for i = lo to hi - 1 do
        ignore (Dist.Lease.complete t ~chunk:i ~now)
      done;
      go ()
    | None -> ()
  in
  go ();
  let sizes = List.rev !sizes in
  Alcotest.(check bool) "monotonically non-increasing" true
    (let rec mono = function
       | a :: (b :: _ as rest) -> a >= b && mono rest
       | _ -> true
     in
     mono sizes);
  Alcotest.(check int) "covers all chunks" 64 (List.fold_left ( + ) 0 sizes);
  Alcotest.(check int) "tail batches are single chunks" 1
    (List.nth sizes (List.length sizes - 1));
  Alcotest.(check bool) "scan completed" true (Dist.Lease.is_complete t)

let test_lease_fail_worker_reclaims () =
  let t = Dist.Lease.create ~max_batch:4 ~total:16 ~completed:(fun _ -> false) () in
  Dist.Lease.register t ~worker:"a" ~now;
  Dist.Lease.register t ~worker:"b" ~now;
  let a_lo, a_hi =
    match Dist.Lease.grant t ~worker:"a" ~now with
    | Some r -> r
    | None -> Alcotest.fail "no grant for a"
  in
  ignore (Dist.Lease.complete t ~chunk:a_lo ~now);
  let reclaimed = Dist.Lease.fail_worker t ~worker:"a" in
  Alcotest.(check (list int)) "uncompleted leases come back"
    (List.init (a_hi - a_lo - 1) (fun i -> a_lo + 1 + i))
    reclaimed;
  (* the reclaimed chunks are the lowest free ones, so b gets them next *)
  (match Dist.Lease.grant t ~worker:"b" ~now with
   | Some (lo, _) ->
     Alcotest.(check int) "reassigned to the next hungry worker" (a_lo + 1) lo
   | None -> Alcotest.fail "no grant for b");
  Alcotest.(check (list string)) "dead worker is gone" [ "b" ]
    (Dist.Lease.workers t)

let test_lease_expire_only_leaseholders () =
  let t = Dist.Lease.create ~max_batch:2 ~total:8 ~completed:(fun _ -> false) () in
  Dist.Lease.register t ~worker:"busy" ~now;
  Dist.Lease.register t ~worker:"idle" ~now;
  ignore (Dist.Lease.grant t ~worker:"busy" ~now);
  (* both stamps are equally stale, but only the leaseholder expires *)
  let expired = Dist.Lease.expire t ~now:(now +. 60.0) ~timeout:10.0 in
  Alcotest.(check (list string)) "only the lease-holding worker expires"
    [ "busy" ] (List.map fst expired);
  Alcotest.(check int) "reclaimed chunks return to the pool" 8
    (Dist.Lease.todo_count t);
  (* progress-expiry reclaims the lease but keeps the worker: one lost
     frame is not a lost worker — it stays registered, connection open,
     eligible for grants again *)
  Alcotest.(check (list string)) "expired worker stays registered"
    [ "busy"; "idle" ] (Dist.Lease.workers t);
  Alcotest.(check bool) "and can be granted to again" true
    (Dist.Lease.grant t ~worker:"busy" ~now:(now +. 61.0) <> None)

let test_lease_expiry_is_progress_based () =
  (* heartbeats prove liveness, not progress: a worker wedged by a
     dropped Grant heartbeats forever and must still expire — while a
     worker that keeps completing chunks must not, however old its
     registration *)
  let t = Dist.Lease.create ~max_batch:2 ~total:8 ~completed:(fun _ -> false) () in
  Dist.Lease.register t ~worker:"wedged" ~now;
  ignore (Dist.Lease.grant t ~worker:"wedged" ~now);
  Dist.Lease.heartbeat t ~worker:"wedged" ~now:(now +. 59.0);
  Alcotest.(check (list string)) "heartbeats alone do not protect a lease"
    [ "wedged" ]
    (List.map fst (Dist.Lease.expire t ~now:(now +. 60.0) ~timeout:10.0));
  let t = Dist.Lease.create ~max_batch:2 ~total:8 ~completed:(fun _ -> false) () in
  Dist.Lease.register t ~worker:"slow" ~now;
  (match Dist.Lease.grant t ~worker:"slow" ~now with
   | Some (lo, _) ->
     ignore (Dist.Lease.complete t ~chunk:lo ~now:(now +. 55.0))
   | None -> Alcotest.fail "no grant");
  Alcotest.(check int) "completing a chunk is progress" 0
    (List.length (Dist.Lease.expire t ~now:(now +. 60.0) ~timeout:10.0))

let test_lease_beat_age () =
  let t = Dist.Lease.create ~total:4 ~completed:(fun _ -> false) () in
  Dist.Lease.register t ~worker:"a" ~now;
  Dist.Lease.heartbeat t ~worker:"a" ~now:(now +. 5.0);
  (match Dist.Lease.beat_age t ~worker:"a" ~now:(now +. 7.0) with
   | Some age -> Alcotest.(check (float 1e-9)) "age since last beat" 2.0 age
   | None -> Alcotest.fail "registered worker has a beat age");
  Alcotest.(check bool) "unregistered worker has none" true
    (Dist.Lease.beat_age t ~worker:"ghost" ~now = None)

let test_lease_duplicate_complete () =
  let t = Dist.Lease.create ~total:4 ~completed:(fun _ -> false) () in
  Dist.Lease.register t ~worker:"a" ~now;
  ignore (Dist.Lease.grant t ~worker:"a" ~now);
  Alcotest.(check bool) "first completion is fresh" true
    (Dist.Lease.complete t ~chunk:0 ~now = `Fresh);
  Alcotest.(check bool) "second completion is a duplicate" true
    (Dist.Lease.complete t ~chunk:0 ~now = `Duplicate)

let test_lease_same_tick_grant_complete () =
  (* a grant and its completions landing on the same timestamp count as
     progress: expiry compares strictly-greater, and nothing is left to
     reclaim afterwards *)
  let t = Dist.Lease.create ~max_batch:8 ~total:4 ~completed:(fun _ -> false) () in
  Dist.Lease.register t ~worker:"a" ~now;
  (match Dist.Lease.grant t ~worker:"a" ~now with
   | Some (lo, hi) ->
     for c = lo to hi - 1 do
       Alcotest.(check bool) "fresh" true
         (Dist.Lease.complete t ~chunk:c ~now = `Fresh)
     done
   | None -> Alcotest.fail "no grant");
  Alcotest.(check int) "same-tick completions expire nothing" 0
    (List.length (Dist.Lease.expire t ~now ~timeout:0.0));
  Alcotest.(check (list int)) "nothing left to reclaim" []
    (Dist.Lease.fail_worker t ~worker:"a")

let test_lease_expiry_races_duplicate_result () =
  (* the lease expired, the chunk was re-granted and completed by a
     peer — then the original holder's Result finally limps in: it must
     read as a duplicate, never a double count *)
  let t = Dist.Lease.create ~max_batch:1 ~total:2 ~completed:(fun _ -> false) () in
  Dist.Lease.register t ~worker:"slow" ~now;
  Dist.Lease.register t ~worker:"fast" ~now:(now +. 30.0);
  let lo =
    match Dist.Lease.grant t ~worker:"slow" ~now with
    | Some (lo, _) -> lo
    | None -> Alcotest.fail "no grant"
  in
  let expired = Dist.Lease.expire t ~now:(now +. 31.0) ~timeout:10.0 in
  Alcotest.(check (list string)) "only the stalled holder expires" [ "slow" ]
    (List.map fst expired);
  (match Dist.Lease.grant t ~worker:"fast" ~now:(now +. 31.0) with
   | Some (lo', _) -> Alcotest.(check int) "reclaimed chunk re-granted" lo lo'
   | None -> Alcotest.fail "no re-grant");
  Alcotest.(check bool) "the peer's completion is fresh" true
    (Dist.Lease.complete t ~chunk:lo ~now:(now +. 32.0) = `Fresh);
  Alcotest.(check bool) "the late original is a duplicate" true
    (Dist.Lease.complete t ~chunk:lo ~now:(now +. 33.0) = `Duplicate);
  Alcotest.(check int) "recorded exactly once" 1 (Dist.Lease.done_count t)

let test_lease_grant_sizing_small_todo () =
  (* four hungry workers, two chunks: grants are single chunks — never
     empty ranges — and the stragglers get [None] *)
  let t = Dist.Lease.create ~max_batch:16 ~total:2 ~completed:(fun _ -> false) () in
  List.iter
    (fun w -> Dist.Lease.register t ~worker:w ~now)
    [ "a"; "b"; "c"; "d" ];
  let g w = Dist.Lease.grant t ~worker:w ~now in
  (match g "a" with
   | Some range -> Alcotest.(check (pair int int)) "one chunk" (0, 1) range
   | None -> Alcotest.fail "a starves");
  (match g "b" with
   | Some range -> Alcotest.(check (pair int int)) "the other chunk" (1, 2) range
   | None -> Alcotest.fail "b starves");
  Alcotest.(check bool) "no empty grants for the rest" true
    (g "c" = None && g "d" = None)

(* -- Wire: v3 framing, CRC, corrupt-frame tolerance -------------------------- *)

let v3_frame payload =
  Printf.sprintf "#3 %d %08x %s\n" (String.length payload)
    (Dist.Wire.crc32 payload) payload

let payload_of m = Obs.Json.to_string (Dist.Wire.to_json m)

let with_pipe f =
  let rfd, wfd = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close rfd with Unix.Unix_error _ -> ());
      try Unix.close wfd with Unix.Unix_error _ -> ())
    (fun () -> f rfd wfd)

let write_str fd s =
  let pos = ref 0 in
  while !pos < String.length s do
    pos := !pos + Unix.write_substring fd s !pos (String.length s - !pos)
  done

let pump rd =
  let got = ref [] in
  let rec go () =
    match Dist.Wire.recv rd with
    | Some m ->
      got := m :: !got;
      go ()
    | None -> ()
  in
  go ();
  List.rev !got

let test_crc32_vectors () =
  Alcotest.(check int) "crc32 of empty is 0" 0 (Dist.Wire.crc32 "");
  Alcotest.(check int) "IEEE 802.3 check value" 0xCBF43926
    (Dist.Wire.crc32 "123456789")

let test_wire_v3_roundtrip () =
  with_pipe (fun rfd wfd ->
      List.iter (Dist.Wire.send wfd) sample_msgs;
      Unix.close wfd;
      let rd = Dist.Wire.reader rfd in
      Alcotest.(check bool) "v3 frames decode to the same messages" true
        (pump rd = sample_msgs);
      Alcotest.(check int) "no frame counted corrupt" 0
        (Dist.Wire.corrupt_count rd))

let test_wire_send_writes_v3_frames () =
  with_pipe (fun rfd wfd ->
      Dist.Wire.send wfd Dist.Wire.Shutdown;
      Unix.close wfd;
      let buf = Bytes.create 4096 in
      let n = Unix.read rfd buf 0 4096 in
      Alcotest.(check string) "the canonical length+CRC frame"
        (v3_frame (payload_of Dist.Wire.Shutdown))
        (Bytes.sub_string buf 0 n))

let test_wire_corrupt_frames_skipped () =
  with_pipe (fun rfd wfd ->
      let grant = Dist.Wire.Grant { lo_chunk = 0; hi_chunk = 2; epoch = 1 } in
      (* a bit-flipped payload byte under an unchanged CRC... *)
      let flipped =
        let f = Bytes.of_string (v3_frame (payload_of Dist.Wire.Shutdown)) in
        let i = Bytes.length f - 3 in
        Bytes.set f i (Char.chr (Char.code (Bytes.get f i) lxor 0x10));
        Bytes.to_string f
      in
      (* ...and a frame cut short of its declared length *)
      let truncated =
        let f = v3_frame (payload_of Dist.Wire.Shutdown) in
        String.sub f 0 (String.length f - 6) ^ "\n"
      in
      write_str wfd
        (v3_frame (payload_of grant)
        ^ flipped ^ truncated
        ^ v3_frame (payload_of Dist.Wire.Shutdown));
      Unix.close wfd;
      let rd = Dist.Wire.reader rfd in
      Alcotest.(check bool) "good frames survive around the damage" true
        (pump rd = [ grant; Dist.Wire.Shutdown ]);
      Alcotest.(check int) "both damaged frames counted" 2
        (Dist.Wire.corrupt_count rd))

let test_wire_valid_crc_bad_json_raises () =
  (* a frame whose checksum passes but whose payload is not a message
     is a broken sender, not line noise — the strict contract holds *)
  with_pipe (fun rfd wfd ->
      write_str wfd (v3_frame "this is not json");
      Unix.close wfd;
      let rd = Dist.Wire.reader rfd in
      match Dist.Wire.recv rd with
      | exception Dist.Wire.Protocol_error _ -> ()
      | _ -> Alcotest.fail "CRC-valid garbage payload must raise")

let test_wire_v2_bytes_still_decode () =
  (* a v1/v2 peer writes bare JSON lines; the v3 reader accepts the
     byte stream unchanged, even interleaved with v3 frames *)
  with_pipe (fun rfd wfd ->
      let bare m = payload_of m ^ "\n" in
      write_str wfd
        (bare (List.nth sample_msgs 0)
        ^ v3_frame (payload_of (List.nth sample_msgs 4))
        ^ bare Dist.Wire.Shutdown);
      Unix.close wfd;
      let rd = Dist.Wire.reader rfd in
      Alcotest.(check bool) "mixed v2/v3 stream decodes in order" true
        (pump rd
         = [ List.nth sample_msgs 0; List.nth sample_msgs 4; Dist.Wire.Shutdown ]);
      Alcotest.(check int) "nothing counted corrupt" 0
        (Dist.Wire.corrupt_count rd))

let test_wire_garbage_strict_then_lenient () =
  (* pre-v3, an unparseable bare line is a broken peer... *)
  with_pipe (fun rfd wfd ->
      write_str wfd "garbage\n";
      Unix.close wfd;
      let rd = Dist.Wire.reader rfd in
      match Dist.Wire.recv rd with
      | exception Dist.Wire.Protocol_error _ -> ()
      | _ -> Alcotest.fail "garbage on a v1/v2 connection must raise");
  (* ...but once the connection has spoken v3, it reads as a frame
     whose "#3 " prefix was mangled in transit: count and skip *)
  with_pipe (fun rfd wfd ->
      write_str wfd (v3_frame (payload_of Dist.Wire.Shutdown) ^ "garbage\n");
      Unix.close wfd;
      let rd = Dist.Wire.reader rfd in
      Alcotest.(check bool) "the valid frame decodes" true
        (pump rd = [ Dist.Wire.Shutdown ]);
      Alcotest.(check int) "the mangled line is counted, not fatal" 1
        (Dist.Wire.corrupt_count rd))

let test_select_eintr_rides_signals () =
  (* an interval timer delivers SIGALRM every 50ms; a 0.3s select must
     neither raise EINTR nor return early — the monotonic remaining-time
     recompute keeps the deadline honest across interruptions *)
  let hits = ref 0 in
  let old_handler =
    Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> incr hits))
  in
  ignore
    (Unix.setitimer Unix.ITIMER_REAL
       { Unix.it_interval = 0.05; it_value = 0.05 });
  Fun.protect
    ~finally:(fun () ->
      ignore
        (Unix.setitimer Unix.ITIMER_REAL
           { Unix.it_interval = 0.0; it_value = 0.0 });
      Sys.set_signal Sys.sigalrm old_handler)
    (fun () ->
      with_pipe (fun rfd _wfd ->
          let t0 = Obs.Clock.now_ns () in
          let ready = Dist.Wire.select_eintr [ rfd ] 0.3 in
          let dt = Obs.Clock.ns_to_s (Int64.sub (Obs.Clock.now_ns ()) t0) in
          Alcotest.(check int) "nothing readable" 0 (List.length ready);
          Alcotest.(check bool) "signals actually interrupted the wait" true
            (!hits >= 2);
          Alcotest.(check bool) "the deadline held through EINTR" true
            (dt >= 0.25 && dt < 2.0)))

(* -- Chaos: deterministic fault injection ------------------------------------ *)

let chaos_profile name =
  List.find (fun p -> p.Dist.Chaos.name = name) Dist.Chaos.profiles

let test_chaos_parse_spec () =
  (match Dist.Chaos.parse_spec "lossy" with
   | Ok { Dist.Chaos.profile; seed } ->
     Alcotest.(check string) "profile" "lossy" profile.Dist.Chaos.name;
     Alcotest.(check int) "seed defaults to 1" 1 seed
   | Error e -> Alcotest.fail e);
  (match Dist.Chaos.parse_spec "wild:42" with
   | Ok s ->
     Alcotest.(check string) "round-trips" "wild:42"
       (Dist.Chaos.spec_to_string s)
   | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "unknown profile rejected" true
    (Result.is_error (Dist.Chaos.parse_spec "bogus"));
  Alcotest.(check bool) "bad seed rejected" true
    (Result.is_error (Dist.Chaos.parse_spec "lossy:banana"))

let chaos_frames =
  List.init 64 (fun i ->
      let payload = Printf.sprintf {|{"msg":"probe","i":%d}|} i in
      v3_frame payload)

let chaos_determinism_prop =
  prop "same spec and conn replay the same fault schedule" ~count:100
    QCheck.(pair (int_range 0 10_000) (int_range 0 40))
    (fun (seed, conn) ->
      let spec = { Dist.Chaos.profile = chaos_profile "wild"; seed } in
      let a = Dist.Chaos.create spec ~conn in
      let b = Dist.Chaos.create spec ~conn in
      List.for_all
        (fun f -> Dist.Chaos.apply a f = Dist.Chaos.apply b f)
        chaos_frames
      && Dist.Chaos.injected a = Dist.Chaos.injected b)

let test_chaos_budget_bounds_faults () =
  let spec = { Dist.Chaos.profile = chaos_profile "lossy"; seed = 7 } in
  let t = Dist.Chaos.create spec ~conn:0 in
  List.iter (fun f -> ignore (Dist.Chaos.apply t f)) chaos_frames;
  List.iter (fun f -> ignore (Dist.Chaos.apply t f)) chaos_frames;
  Alcotest.(check int) "budget fully spent, never exceeded"
    (chaos_profile "lossy").Dist.Chaos.budget (Dist.Chaos.injected t);
  (* an exhausted stream is a passthrough — the liveness argument: any
     chaos run faces only finitely many faults *)
  let f = List.hd chaos_frames in
  ignore (Dist.Chaos.apply t f);
  Alcotest.(check bool) "passthrough after exhaustion" true
    (Dist.Chaos.apply t f = [ f ])

(* -- Checkpoint v1 -> v2 read compatibility ---------------------------------- *)

let test_checkpoint_v1_reads_as_v2 () =
  let v1 =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.String "ppcheckpoint/v1");
        ("config_hash", Obs.Json.String "deadbeef");
        ("config", Obs.Json.Obj [ ("n", Obs.Json.Int 2) ]);
        ("total_chunks", Obs.Json.Int 5);
        ( "chunks",
          Obs.Json.List
            [
              Obs.Json.Obj
                [
                  ("index", Obs.Json.Int 2);
                  ("state", Obs.Json.Obj [ ("scanned", Obs.Json.Int 7) ]);
                ];
            ] );
      ]
  in
  match Obs.Checkpoint.of_json v1 with
  | Error e -> Alcotest.fail e
  | Ok c ->
    Alcotest.(check int) "v1 loads at epoch 0" 0 (Obs.Checkpoint.epoch c);
    Alcotest.(check int) "completed chunks survive" 1 (Obs.Checkpoint.num_done c);
    Alcotest.(check bool) "lease table is empty" true
      (List.init 5 (fun i -> Obs.Checkpoint.lease c i)
       |> List.for_all (( = ) None));
    (* and re-saving emits v2, which round-trips with leases *)
    ignore (Obs.Checkpoint.bump_epoch c);
    Obs.Checkpoint.set_lease c 3 ~holder:"w1";
    (match Obs.Checkpoint.of_json (Obs.Checkpoint.to_json c) with
     | Error e -> Alcotest.fail e
     | Ok c' ->
       Alcotest.(check int) "epoch round-trips" 1 (Obs.Checkpoint.epoch c');
       Alcotest.(check bool) "lease round-trips" true
         (Obs.Checkpoint.lease c' 3
          = Some { Obs.Checkpoint.holder = "w1"; lease_epoch = 1 });
       Alcotest.(check (list int)) "leased_to agrees" [ 3 ]
         (Obs.Checkpoint.leased_to c' ~holder:"w1"))

let test_mismatch_diff () =
  let expected =
    Obs.Json.Obj [ ("n", Obs.Json.Int 3); ("chunk", Obs.Json.Int 16) ]
  in
  let found =
    Obs.Json.Obj [ ("n", Obs.Json.Int 2); ("chunk", Obs.Json.Int 16) ]
  in
  let diff = Obs.Checkpoint.config_diff ~expected ~found in
  Alcotest.(check (list string)) "only the changed field" [ "n" ]
    (List.map (fun d -> d.Obs.Checkpoint.field) diff);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let msg = Obs.Checkpoint.mismatch_message ~path:"x.ckpt" diff in
  Alcotest.(check bool) "message shows both values" true
    (contains msg "run has 3" && contains msg "snapshot has 2")

(* -- Simulated distributed scan: kill a random worker at a random chunk ----- *)

(* The per-chunk work and the merge are the real ones
   (Busy_beaver.scan_chunk / result_of_chunks); only the transport is
   simulated — scheduling decisions, the kill moment and the recovery
   all run through Dist.Lease exactly as the coordinator drives it. *)
let simulate_with_kill ~plan ~reference ~num_workers ~kill_worker ~kill_after
    ~choose =
  let nc = Busy_beaver.plan_chunks plan in
  let slots = Array.make nc None in
  let lease =
    Dist.Lease.create ~max_batch:3 ~total:nc ~completed:(fun _ -> false) ()
  in
  let queues = Array.make num_workers [] in
  let live = Array.make num_workers true in
  let done_by = Array.make num_workers 0 in
  let killed = ref false in
  for w = 0 to num_workers - 1 do
    Dist.Lease.register lease ~worker:(string_of_int w) ~now:0.0
  done;
  let steps = ref 0 in
  while (not (Dist.Lease.is_complete lease)) && !steps < 100_000 do
    incr steps;
    (* top up idle live workers, as the coordinator's feed_idle does *)
    for w = 0 to num_workers - 1 do
      if live.(w) && queues.(w) = [] then
        match Dist.Lease.grant lease ~worker:(string_of_int w) ~now:0.0 with
        | Some (lo, hi) -> queues.(w) <- List.init (hi - lo) (fun i -> lo + i)
        | None -> ()
    done;
    let ready =
      List.filter
        (fun w -> live.(w) && queues.(w) <> [])
        (List.init num_workers Fun.id)
    in
    match ready with
    | [] -> Alcotest.fail "deadlock: chunks outstanding but no ready worker"
    | _ ->
      let w = List.nth ready (choose (List.length ready)) in
      if (not !killed) && w = kill_worker && done_by.(w) >= kill_after then begin
        (* SIGKILL: everything still queued goes back to the pool *)
        ignore (Dist.Lease.fail_worker lease ~worker:(string_of_int w));
        live.(w) <- false;
        queues.(w) <- [];
        killed := true
      end
      else begin
        match queues.(w) with
        | [] -> assert false
        | c :: rest ->
          queues.(w) <- rest;
          if slots.(c) = None then
            slots.(c) <- Some (Busy_beaver.scan_chunk plan c);
          ignore (Dist.Lease.complete lease ~chunk:c ~now:0.0);
          done_by.(w) <- done_by.(w) + 1
      end
  done;
  Dist.Lease.is_complete lease
  && result_eq (Busy_beaver.result_of_chunks plan slots) reference

(* one plan and reference for all 200 iterations — the prop varies the
   worker count, the victim, the kill moment and the interleaving *)
let sim_plan = Busy_beaver.plan ~chunk:4 ~max_input:8 ~n:2 ()
let sim_reference = Busy_beaver.scan ~chunk:4 ~max_input:8 ~n:2 ()

let kill_recovery_prop =
  prop "killed worker's chunks reassign; merged result byte-identical"
    ~count:200
    QCheck.(
      quad (int_range 2 5) (int_range 0 4) (int_range 0 12) (int_range 0 1000))
    (fun (num_workers, kill_worker, kill_after, seed) ->
      let kill_worker = kill_worker mod num_workers in
      let rng = Random.State.make [| seed |] in
      let choose n = Random.State.int rng n in
      simulate_with_kill ~plan:sim_plan ~reference:sim_reference ~num_workers
        ~kill_worker ~kill_after ~choose)

(* -- Clock-offset alignment -------------------------------------------------- *)

(* Telemetry.align_line is the pure core of the coordinator's merged
   timeline: a worker's capture sink stamps absolute worker-clock
   seconds, and alignment adds the (min-filtered) offset estimate to
   land on the coordinator's clock. With exact offsets the merged
   timeline must be globally monotone and — canonicalized by sorting —
   invariant under how the events were partitioned across workers. *)
let align_canonical ~num_workers ~offsets ~assign events =
  (* worker w's local view of global instant t is t + offsets.(w);
     align with offset_s = -offsets.(w) (the exact estimate when the
     minimum delivery delay is 0) *)
  let aligned =
    List.concat
      (List.init num_workers (fun w ->
           let mine =
             List.filter (fun (i, _) -> assign i = w) events
           in
           List.filter_map
             (fun (i, t) ->
               let line =
                 Obs.Json.to_string
                   (Obs.Json.Obj
                      [
                        ("ts_s", Obs.Json.Float (t +. offsets.(w)));
                        ("ev", Obs.Json.String (Printf.sprintf "e%d" i));
                      ])
               in
               Option.map
                 (fun j -> (i, j))
                 (Dist.Telemetry.align_line ~offset_s:(-.offsets.(w))
                    ~origin_s:0.0 ~sink_origin_s:0.0
                    ~tags:[ ("worker", Obs.Json.String (string_of_int w)) ]
                    line))
             mine))
  in
  let ts_of j =
    match j with
    | Obs.Json.Obj f -> (
        match List.assoc_opt "ts_s" f with
        | Some (Obs.Json.Float t) -> t
        | Some (Obs.Json.Int t) -> float_of_int t
        | _ -> nan)
    | _ -> nan
  in
  List.sort compare (List.map (fun (i, j) -> (ts_of j, i)) aligned)

let offset_alignment_prop =
  prop "skewed worker streams align to one monotone, stable timeline"
    ~count:100
    QCheck.(
      quad (int_range 1 5) (int_range 0 1000) (int_range 1 30) (int_range 0 1000))
    (fun (num_workers, off_seed, num_events, assign_seed) ->
      let rng = Random.State.make [| off_seed |] in
      let offsets =
        Array.init num_workers (fun _ ->
            Random.State.float rng 10.0 -. 5.0)
      in
      let events =
        List.init num_events (fun i -> (i, float_of_int i *. 0.125))
      in
      let arng = Random.State.make [| assign_seed |] in
      let assignment =
        Array.init num_events (fun _ -> Random.State.int arng num_workers)
      in
      let split =
        align_canonical ~num_workers ~offsets
          ~assign:(fun i -> assignment.(i))
          events
      in
      (* canonical reference: everything on one unskewed worker *)
      let whole =
        align_canonical ~num_workers:1 ~offsets:[| 0.0 |]
          ~assign:(fun _ -> 0)
          events
      in
      let rec monotone = function
        | (a, _) :: ((b, _) :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      monotone split
      && List.map snd split = List.map snd whole
      && List.for_all2
           (fun (ta, _) (tb, _) -> Float.abs (ta -. tb) < 1e-9)
           split whole)

let test_align_skips_headers_and_tags () =
  let t = Dist.Telemetry.create () in
  let aligned =
    Dist.Telemetry.align_events t ~worker:"w9" ~origin_s:0.0 ~sink_origin_s:0.0
      [
        {|{"schema":"ppevents/v1","t0_utc":"x"}|};
        {|{"ts_s":1.0,"ev":"worker.chunk"}|};
        "not json at all";
      ]
  in
  Alcotest.(check int) "header and junk dropped, record kept" 1
    (List.length aligned);
  match aligned with
  | [ Obs.Json.Obj fields ] ->
    Alcotest.(check bool) "worker tag appended" true
      (List.assoc_opt "worker" fields = Some (Obs.Json.String "w9"))
  | _ -> Alcotest.fail "expected one object"

let test_offset_min_filter () =
  let t = Dist.Telemetry.create () in
  (* worker clock = coordinator clock + 3: sent stamps are +3, and
     delivery delays shrink over time — the estimate must keep the
     minimum, converging on -3 + min delay *)
  Dist.Telemetry.join t ~worker:"w" ~host:"h" ~pid:1
    ~sent_s:(Some (10.0 +. 3.0)) ~now:(10.0 +. 0.5);
  Dist.Telemetry.heartbeat t ~worker:"w" ~sent_s:(Some (20.0 +. 3.0))
    ~metrics:None ~now:(20.0 +. 0.01);
  Dist.Telemetry.heartbeat t ~worker:"w" ~sent_s:(Some (30.0 +. 3.0))
    ~metrics:None ~now:(30.0 +. 0.2);
  let est = Dist.Telemetry.offset t ~worker:"w" in
  Alcotest.(check bool) "min-filtered to the best sample" true
    (Float.abs (est -. (-3.0 +. 0.01)) < 1e-9)

(* -- Real processes: fork workers through Distributed_scan ------------------- *)

let test_fork_smoke () =
  let plan = Busy_beaver.plan ~chunk:8 ~max_input:8 ~n:2 () in
  let reference = Busy_beaver.scan ~chunk:8 ~max_input:8 ~n:2 () in
  let o = Distributed_scan.coordinate ~workers:2 ~plan () in
  Alcotest.(check bool) "result identical to single-process" true
    (result_eq o.Distributed_scan.result reference);
  Alcotest.(check bool) "not interrupted" true
    (not o.Distributed_scan.result.Busy_beaver.interrupted);
  Alcotest.(check int) "both workers joined" 2
    o.Distributed_scan.stats.Dist.Coordinator.workers_seen

let test_fork_chaos_kill () =
  let plan = Busy_beaver.plan ~chunk:4 ~max_input:8 ~n:2 () in
  let reference = Busy_beaver.scan ~chunk:4 ~max_input:8 ~n:2 () in
  let o =
    Distributed_scan.coordinate ~workers:3 ~chaos_kill:(1, 1) ~plan ()
  in
  Alcotest.(check bool) "result identical despite the SIGKILL" true
    (result_eq o.Distributed_scan.result reference);
  Alcotest.(check int) "the killed worker was noticed" 1
    o.Distributed_scan.stats.Dist.Coordinator.workers_lost

let with_temp_checkpoint f =
  let path = Filename.temp_file "distscan" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_fork_checkpoint_epochs () =
  with_temp_checkpoint (fun path ->
      let plan = Busy_beaver.plan ~chunk:8 ~max_input:8 ~n:2 () in
      let o1 = Distributed_scan.coordinate ~workers:1 ~checkpoint:path ~plan () in
      Alcotest.(check bool) "first run completes" true
        (not o1.Distributed_scan.result.Busy_beaver.interrupted);
      (match Obs.Checkpoint.load path with
       | Error e -> Alcotest.fail e
       | Ok c ->
         Alcotest.(check int) "first adoption is epoch 1" 1
           (Obs.Checkpoint.epoch c);
         Alcotest.(check int) "ledger is complete" (Obs.Checkpoint.num_done c)
           c.Obs.Checkpoint.total_chunks);
      (* resuming a complete ledger: adopt (epoch 2), nothing to scan,
         same result from the restored accumulators *)
      let o2 =
        Distributed_scan.coordinate ~workers:1 ~checkpoint:path ~resume:true
          ~plan ()
      in
      Alcotest.(check bool) "resumed result identical" true
        (result_eq o1.Distributed_scan.result o2.Distributed_scan.result);
      Alcotest.(check int) "no chunk re-scanned" 0
        o2.Distributed_scan.stats.Dist.Coordinator.chunks_done;
      match Obs.Checkpoint.load path with
      | Error e -> Alcotest.fail e
      | Ok c ->
        Alcotest.(check int) "second adoption bumped the epoch" 2
          (Obs.Checkpoint.epoch c))

let test_fork_telemetry () =
  let events_path = Filename.temp_file "distscan" ".events.jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove events_path with Sys_error _ -> ())
    (fun () ->
      let plan = Busy_beaver.plan ~chunk:4 ~max_input:8 ~n:2 () in
      let reference = Busy_beaver.scan ~chunk:4 ~max_input:8 ~n:2 () in
      Obs.Events.start_file events_path;
      let o =
        Fun.protect
          ~finally:(fun () -> Obs.Events.stop ())
          (fun () -> Distributed_scan.coordinate ~workers:2 ~plan ())
      in
      Alcotest.(check bool) "telemetry does not change the result" true
        (result_eq o.Distributed_scan.result reference);
      let fleet = o.Distributed_scan.stats.Dist.Coordinator.fleet in
      Alcotest.(check int) "both workers in the fleet summary" 2
        (List.length fleet);
      Alcotest.(check int) "fleet chunk counts sum to the total"
        o.Distributed_scan.stats.Dist.Coordinator.chunks_done
        (List.fold_left
           (fun acc s -> acc + s.Dist.Telemetry.s_chunks_done)
           0 fleet);
      (* the merged log: coordinator's own dist.* records plus the
         workers' forwarded worker.chunk records, worker-tagged *)
      let lines =
        In_channel.with_open_text events_path In_channel.input_lines
      in
      let records =
        List.filter_map
          (fun l ->
            match Obs.Json.parse l with
            | Ok (Obs.Json.Obj f) when not (List.mem_assoc "schema" f) ->
              Some f
            | _ -> None)
          lines
      in
      let ev_is name f =
        List.assoc_opt "ev" f = Some (Obs.Json.String name)
      in
      Alcotest.(check bool) "dist.worker_join recorded" true
        (List.exists (ev_is "dist.worker_join") records);
      let chunk_records = List.filter (ev_is "worker.chunk") records in
      Alcotest.(check bool) "forwarded worker.chunk records present" true
        (chunk_records <> []);
      Alcotest.(check bool) "every forwarded record is worker-tagged" true
        (List.for_all
           (fun f ->
             match List.assoc_opt "worker" f with
             | Some (Obs.Json.String _) -> true
             | _ -> false)
           chunk_records);
      (* and the same log feeds the fleet analytics *)
      let report = Obs.Fleet_stats.analyse lines in
      Alcotest.(check int) "fleet report sees both workers" 2
        (List.length report.Obs.Fleet_stats.workers);
      Alcotest.(check bool) "fleet markdown renders" true
        (String.length (Obs.Fleet_stats.to_markdown report) > 0))

(* -- Worker: cached chunk states resend instead of redoing ------------------- *)

let test_worker_cache_resends () =
  (* scripted coordinator in a child process: Welcome, the same Grant
     twice (what a lease expiry after a lost Result produces), then
     Shutdown. The worker must compute each chunk once and answer the
     second Grant from its cache. *)
  let coord_fd, worker_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.fork () with
  | 0 ->
    Unix.close worker_fd;
    let rd = Dist.Wire.reader coord_fd in
    let send = Dist.Wire.send coord_fd in
    let ok = ref true in
    let rec wait_results n =
      if n > 0 then
        match Dist.Wire.recv rd with
        | Some (Dist.Wire.Result _) -> wait_results (n - 1)
        | Some (Dist.Wire.Hello _ | Dist.Wire.Heartbeat _) -> wait_results n
        | Some _ | None -> ok := false
    in
    (match Dist.Wire.recv rd with
     | Some (Dist.Wire.Hello _) -> ()
     | _ -> ok := false);
    send
      (Dist.Wire.Welcome
         {
           config = Obs.Json.Obj [];
           config_hash = "h";
           epoch = 1;
           total_chunks = 3;
           telemetry = false;
         });
    send (Dist.Wire.Grant { lo_chunk = 0; hi_chunk = 3; epoch = 1 });
    wait_results 3;
    send (Dist.Wire.Grant { lo_chunk = 0; hi_chunk = 3; epoch = 1 });
    wait_results 3;
    send Dist.Wire.Shutdown;
    (* drain the worker's final telemetry flush until EOF *)
    (try
       let rec drain () =
         match Dist.Wire.recv rd with Some _ -> drain () | None -> ()
       in
       drain ()
     with Dist.Wire.Protocol_error _ -> ());
    Unix._exit (if !ok then 0 else 1)
  | pid ->
    Unix.close coord_fd;
    let scans = ref 0 in
    let runner _config =
      Ok
        {
          Dist.Worker.scan =
            (fun i ->
              incr scans;
              Obs.Json.Int i);
          range = None;
        }
    in
    let res =
      Dist.Worker.run ~heartbeat_every:0.2 ~name:"cachetest" ~fd:worker_fd
        ~runner ()
    in
    (try Unix.close worker_fd with Unix.Unix_error _ -> ());
    let _, status = Unix.waitpid [] pid in
    Alcotest.(check bool) "worker ran to Shutdown" true (res = Ok ());
    Alcotest.(check int) "each chunk computed exactly once" 3 !scans;
    Alcotest.(check bool) "scripted coordinator satisfied" true
      (status = Unix.WEXITED 0)

(* -- The tentpole invariant end to end: randomized chaos x kill points -------- *)

(* one plan and reference for all iterations; the prop varies the chaos
   profile, its seed and the SIGKILL point. Every run forks 3 real
   worker processes through the socketpair topology with deterministic
   fault injection armed on both sides of every connection. *)
let fork_chaos_plan = Busy_beaver.plan ~chunk:8 ~max_input:6 ~n:2 ()
let fork_chaos_reference = Busy_beaver.scan ~chunk:8 ~max_input:6 ~n:2 ()

let fork_chaos_kill_prop =
  prop "chaos + SIGKILL through real forks stays byte-identical" ~count:100
    QCheck.(
      quad (int_range 0 100_000) (int_range 0 2) (int_range 0 2) (int_range 0 3))
    (fun (seed, profile_idx, kill_worker, kill_after) ->
      let profile =
        chaos_profile (List.nth [ "lossy"; "corrupt"; "wild" ] profile_idx)
      in
      let o =
        Distributed_scan.coordinate ~workers:3 ~heartbeat_timeout:0.35
          ~chaos_kill:(kill_worker, kill_after)
          ~chaos_net:{ Dist.Chaos.profile; seed } ~plan:fork_chaos_plan ()
      in
      result_eq o.Distributed_scan.result fork_chaos_reference
      && not o.Distributed_scan.result.Busy_beaver.interrupted)

(* -- Coordinator crash recovery with a live, reconnecting worker ------------- *)

let test_coordinator_restart_recovery () =
  with_temp_checkpoint (fun path ->
      let plan = Busy_beaver.plan ~chunk:4 ~max_input:8 ~n:2 () in
      let reference = Busy_beaver.scan ~chunk:4 ~max_input:8 ~n:2 () in
      let serve_fd = Distributed_scan.listen ~port:0 () in
      let port =
        match Unix.getsockname serve_fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> Alcotest.fail "listen socket has no port"
      in
      (* first coordinator life: a forked process sharing the listening
         fd, SIGKILLed once the ledger shows progress — the parent then
         resumes on the very same socket, so the port never moves *)
      let coord_pid =
        match Unix.fork () with
        | 0 ->
          (try
             ignore
               (Distributed_scan.coordinate ~serve:serve_fd
                  ~heartbeat_timeout:1.0 ~checkpoint:path
                  ~checkpoint_every_chunks:1 ~checkpoint_every_s:0.05 ~plan ())
           with _ -> ());
          Unix._exit 0
        | pid -> pid
      in
      let worker_pid =
        match Unix.fork () with
        | 0 ->
          let r =
            Distributed_scan.connect_worker ~name:"phoenix"
              ~heartbeat_every:0.25 ~reconnect:true ~max_attempts:8
              ~backoff_base:0.1 ~host:"127.0.0.1" ~port ()
          in
          Unix._exit (match r with Ok () -> 0 | Error _ -> 1)
        | pid -> pid
      in
      let deadline = Unix.gettimeofday () +. 30.0 in
      let rec wait_progress () =
        if Unix.gettimeofday () > deadline then `Timeout
        else
          match Obs.Checkpoint.load path with
          | Ok c when Obs.Checkpoint.num_done c >= c.Obs.Checkpoint.total_chunks
            ->
            `Finished
          | Ok c when Obs.Checkpoint.num_done c > 0 -> `Mid
          | _ ->
            Unix.sleepf 0.01;
            wait_progress ()
      in
      let progress = wait_progress () in
      Alcotest.(check bool) "ledger showed progress before the kill" true
        (progress <> `Timeout);
      Unix.kill coord_pid Sys.sigkill;
      ignore (Unix.waitpid [] coord_pid);
      (* second life: adopt the ledger, bump the epoch, finish the scan
         with the worker that reconnects mid-flight *)
      let o =
        Fun.protect
          ~finally:(fun () ->
            try Unix.close serve_fd with Unix.Unix_error _ -> ())
          (fun () ->
            Distributed_scan.coordinate ~serve:serve_fd ~heartbeat_timeout:1.0
              ~checkpoint:path ~checkpoint_every_chunks:1 ~resume:true ~plan ())
      in
      let _, _wstatus = Unix.waitpid [] worker_pid in
      Alcotest.(check bool) "merged result identical across the crash" true
        (result_eq o.Distributed_scan.result reference);
      Alcotest.(check bool) "recovery run completed" true
        (not o.Distributed_scan.result.Busy_beaver.interrupted);
      match Obs.Checkpoint.load path with
      | Ok c ->
        Alcotest.(check bool) "second adoption bumped the epoch" true
          (Obs.Checkpoint.epoch c >= 2)
      | Error e -> Alcotest.fail e)

let () =
  Alcotest.run "dist"
    [
      ( "wire",
        [
          Alcotest.test_case "message round-trip" `Quick test_wire_roundtrip;
          Alcotest.test_case "telemetry-off Welcome is v1-identical" `Quick
            test_wire_v1_welcome_bytes;
          Alcotest.test_case "unknown kind decodes as Unknown" `Quick
            test_wire_unknown_kind;
          wire_unknown_fields_prop;
          wire_fragmentation_prop;
        ] );
      ( "wire-v3",
        [
          Alcotest.test_case "crc32 test vectors" `Quick test_crc32_vectors;
          Alcotest.test_case "send writes canonical v3 frames" `Quick
            test_wire_send_writes_v3_frames;
          Alcotest.test_case "v3 frames round-trip" `Quick
            test_wire_v3_roundtrip;
          Alcotest.test_case "corrupt frames counted and skipped" `Quick
            test_wire_corrupt_frames_skipped;
          Alcotest.test_case "CRC-valid garbage payload raises" `Quick
            test_wire_valid_crc_bad_json_raises;
          Alcotest.test_case "v1/v2 byte streams still decode" `Quick
            test_wire_v2_bytes_still_decode;
          Alcotest.test_case "bare garbage: strict pre-v3, lenient after"
            `Quick test_wire_garbage_strict_then_lenient;
          Alcotest.test_case "select_eintr rides out signals" `Quick
            test_select_eintr_rides_signals;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "parse_spec accepts PROFILE[:SEED]" `Quick
            test_chaos_parse_spec;
          chaos_determinism_prop;
          Alcotest.test_case "finite budget, then passthrough" `Quick
            test_chaos_budget_bounds_faults;
        ] );
      ( "telemetry",
        [
          offset_alignment_prop;
          Alcotest.test_case "alignment skips headers, appends tags" `Quick
            test_align_skips_headers_and_tags;
          Alcotest.test_case "offset estimate is min-filtered" `Quick
            test_offset_min_filter;
        ] );
      ( "lease",
        [
          Alcotest.test_case "grants lowest free chunks" `Quick
            test_lease_grant_lowest_first;
          Alcotest.test_case "batch sizes descend" `Quick
            test_lease_batches_descend;
          Alcotest.test_case "failed worker's leases reclaim" `Quick
            test_lease_fail_worker_reclaims;
          Alcotest.test_case "expiry spares idle workers" `Quick
            test_lease_expire_only_leaseholders;
          Alcotest.test_case "expiry is progress-based" `Quick
            test_lease_expiry_is_progress_based;
          Alcotest.test_case "beat age tracks liveness" `Quick
            test_lease_beat_age;
          Alcotest.test_case "duplicate completion detected" `Quick
            test_lease_duplicate_complete;
          Alcotest.test_case "same-tick grant+complete is progress" `Quick
            test_lease_same_tick_grant_complete;
          Alcotest.test_case "expiry racing a late Result" `Quick
            test_lease_expiry_races_duplicate_result;
          Alcotest.test_case "grant sizing when todo < workers" `Quick
            test_lease_grant_sizing_small_todo;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "v1 checkpoint reads as v2" `Quick
            test_checkpoint_v1_reads_as_v2;
          Alcotest.test_case "mismatch diff names the field" `Quick
            test_mismatch_diff;
        ] );
      ("recovery", [ kill_recovery_prop ]);
      ( "processes",
        [
          Alcotest.test_case "fork workers, identical result" `Quick
            test_fork_smoke;
          Alcotest.test_case "SIGKILL mid-scan, identical result" `Quick
            test_fork_chaos_kill;
          Alcotest.test_case "checkpoint epochs across adoptions" `Quick
            test_fork_checkpoint_epochs;
          Alcotest.test_case "fleet telemetry over fork workers" `Quick
            test_fork_telemetry;
          Alcotest.test_case "cached chunk states resend, not redo" `Quick
            test_worker_cache_resends;
        ] );
      ( "chaos-e2e",
        [
          fork_chaos_kill_prop;
          Alcotest.test_case "coordinator SIGKILL, resume, rejoin" `Quick
            test_coordinator_restart_recovery;
        ] );
    ]
