(* The multicore Monte-Carlo ensemble engine: determinism across domain
   counts and chunk sizes, prefix-stability of per-trial records, Stats
   laws on generated data, and a differential test of ensemble majority
   verdicts against the exact fair semantics on the protocols/ corpus. *)

let prop name ?(count = 100) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let trial_eq (a : Ensemble.trial) (b : Ensemble.trial) =
  a.Ensemble.index = b.Ensemble.index
  && a.Ensemble.steps = b.Ensemble.steps
  && a.Ensemble.parallel_time = b.Ensemble.parallel_time
  && a.Ensemble.output = b.Ensemble.output
  && a.Ensemble.converged = b.Ensemble.converged

let trials_eq a b =
  Array.length a = Array.length b && Array.for_all2 trial_eq a b

(* -- determinism across the domain pool ----------------------------------- *)

let ensemble_of ?(jobs = 1) ?chunk ?backend ~seed ~trials () =
  Ensemble.run_input ?chunk ?backend ~jobs ~seed ~trials (Flock.succinct 2) [| 12 |]

let jobs_invariance_prop backend_name backend =
  prop
    (Printf.sprintf "aggregate independent of jobs (%s)" backend_name)
    ~count:8 QCheck.(int_range 0 10_000)
    (fun seed ->
      let reference = ensemble_of ~jobs:1 ~backend ~seed ~trials:10 () in
      List.for_all
        (fun jobs ->
          let e = ensemble_of ~jobs ~backend ~seed ~trials:10 () in
          trials_eq reference.Ensemble.trials e.Ensemble.trials
          && Ensemble.summary reference = Ensemble.summary e)
        [ 2; 4 ])

let chunk_invariance_prop =
  prop "aggregate independent of chunk size" ~count:8
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let reference = ensemble_of ~jobs:2 ~chunk:1 ~seed ~trials:11 () in
      List.for_all
        (fun chunk ->
          let e = ensemble_of ~jobs:2 ~chunk ~seed ~trials:11 () in
          trials_eq reference.Ensemble.trials e.Ensemble.trials)
        [ 3; 8; 100 ])

(* trial i's record depends only on (seed, i) — never on the batch size,
   so a longer batch extends a shorter one without rewriting history *)
let prefix_stability_prop =
  prop "per-trial records are prefix-stable in the trial count" ~count:8
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let small = ensemble_of ~jobs:2 ~seed ~trials:5 () in
      let large = ensemble_of ~jobs:3 ~seed ~trials:12 () in
      trials_eq small.Ensemble.trials
        (Array.sub large.Ensemble.trials 0 5))

let test_rng_for_trial () =
  let e = ensemble_of ~jobs:2 ~seed:99 ~trials:6 () in
  (* re-running trial 4 in isolation from its published stream
     reproduces the record exactly *)
  let rng = Ensemble.rng_for_trial ~seed:99 4 in
  let r = Simulator.run_input ~rng (Flock.succinct 2) [| 12 |] in
  let t = e.Ensemble.trials.(4) in
  Alcotest.(check int) "steps" t.Ensemble.steps r.Simulator.steps;
  Alcotest.(check (option bool)) "output" t.Ensemble.output r.Simulator.output

let test_zero_trials () =
  let e = ensemble_of ~jobs:4 ~seed:1 ~trials:0 () in
  Alcotest.(check int) "no trials" 0 (Array.length e.Ensemble.trials);
  Alcotest.(check string) "summary" "trials=0 converged=0 accept=0 reject=0 undecided=0\nparallel time: n=0\n"
    (Ensemble.summary e)

(* Simulator.sample_parallel_times is the sequential face of a 1-domain
   ensemble: identical streams, identical estimates *)
let sample_parity_prop =
  prop "sample_parallel_times = 1-domain ensemble" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let p = Flock.succinct 2 in
      let sequential =
        Simulator.sample_parallel_times ~runs:7 ~rng:(Splitmix64.create seed) p
          [| 12 |]
      in
      let ensemble =
        Ensemble.parallel_times
          (Ensemble.run_input ~jobs:1 ~seed ~trials:7 p [| 12 |])
      in
      sequential = ensemble)

(* -- Stats laws ----------------------------------------------------------- *)

let floats_arb lo =
  QCheck.(list_of_size (QCheck.Gen.int_range lo 20) (float_bound_inclusive 100.0))

let stats_props =
  [
    prop "quantile monotone in q"
      QCheck.(triple (floats_arb 1) (float_bound_inclusive 1.0) (float_bound_inclusive 1.0))
      (fun (xs, q1, q2) ->
        let lo = Stdlib.min q1 q2 and hi = Stdlib.max q1 q2 in
        Stats.quantile lo xs <= Stats.quantile hi xs +. 1e-9);
    prop "quantile bounded by extremes" (floats_arb 1) (fun xs ->
        let mn = List.fold_left Stdlib.min infinity xs in
        let mx = List.fold_left Stdlib.max neg_infinity xs in
        Stats.quantile 0.0 xs = mn && Stats.quantile 1.0 xs = mx);
    prop "mean within [min, max]" (floats_arb 1) (fun xs ->
        let m = Stats.mean xs in
        m >= List.fold_left Stdlib.min infinity xs -. 1e-9
        && m <= List.fold_left Stdlib.max neg_infinity xs +. 1e-9);
    prop "stddev tiny on constant lists"
      QCheck.(pair (int_range 1 20) (float_bound_inclusive 100.0))
      (fun (n, x) ->
        let sd = Stats.stddev (List.init n (fun _ -> x)) in
        sd >= 0.0 && sd <= 1e-9 *. (1.0 +. Float.abs x));
    prop "histogram counts sum to n" (floats_arb 1) (fun xs ->
        let total =
          List.fold_left (fun acc (_, _, c) -> acc + c) 0 (Stats.histogram xs)
        in
        total = List.length xs);
    prop "histogram spans the data range" (floats_arb 2) (fun xs ->
        match Stats.histogram ~bins:5 xs with
        | [] -> xs = [] (* shrinker artifact: vacuous on the empty list *)
        | ((lo, _, _) :: _ as h) ->
          let _, hi, _ = List.nth h (List.length h - 1) in
          lo = List.fold_left Stdlib.min infinity xs
          && hi = List.fold_left Stdlib.max neg_infinity xs);
  ]

(* -- differential: ensemble majority vs the exact semantics --------------- *)

let corpus_dir () =
  let candidates =
    [ "../protocols"; "protocols"; "../../protocols"; "../../../protocols" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some d -> d
  | None -> Alcotest.fail "protocols/ corpus not found"

let corpus_protocols () =
  let dir = corpus_dir () in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".pp")
  |> List.sort compare
  |> List.map (fun f ->
         match Protocol_syntax.parse_file (Filename.concat dir f) with
         | Ok p -> (f, Population.complete p)
         | Error e -> Alcotest.failf "%s: %s" f e)

(* every input vector with total population between 2 and [max_pop] *)
let small_inputs p ~max_pop =
  let k = Array.length p.Population.input_vars in
  let rec go k budget =
    if k = 0 then [ [] ]
    else
      List.concat_map
        (fun c -> List.map (fun rest -> c :: rest) (go (k - 1) (budget - c)))
        (List.init (budget + 1) Fun.id)
  in
  go k max_pop
  |> List.map Array.of_list
  |> List.filter (fun v -> Array.fold_left ( + ) 0 v >= 2)

let differential_backend backend_name backend () =
  List.iter
    (fun (file, p) ->
      List.iter
        (fun v ->
          match Fair_semantics.decide p v with
          | Fair_semantics.Decides expected ->
            let e = Ensemble.run_input ~jobs:2 ~backend ~seed:1234 ~trials:50 p v in
            let verdict = Ensemble.majority_output e in
            if verdict <> Some expected then
              Alcotest.failf "%s (%s) at %s: ensemble majority %s, exact %b" file
                backend_name
                (String.concat "," (List.map string_of_int (Array.to_list v)))
                (match verdict with
                 | Some b -> string_of_bool b
                 | None -> "tie")
                expected
          | _ -> (* simulation can't vote on non-deciding inputs *) ())
        (small_inputs p ~max_pop:6))
    (corpus_protocols ())

let () =
  Alcotest.run "ensemble"
    [
      ( "determinism",
        [
          jobs_invariance_prop "uniform" (Ensemble.uniform ());
          jobs_invariance_prop "gillespie"
            (Ensemble.gillespie ~max_steps:500_000 ());
          chunk_invariance_prop;
          prefix_stability_prop;
          Alcotest.test_case "rng_for_trial replays a trial" `Quick
            test_rng_for_trial;
          Alcotest.test_case "empty batch" `Quick test_zero_trials;
          sample_parity_prop;
        ] );
      ("stats laws", stats_props);
      ( "differential vs exact semantics",
        [
          Alcotest.test_case "corpus, uniform backend" `Slow
            (differential_backend "uniform" (Ensemble.uniform ()));
          Alcotest.test_case "corpus, gillespie backend" `Slow
            (differential_backend "gillespie" (Ensemble.gillespie ()));
        ] );
    ]
