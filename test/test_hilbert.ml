(* Tests for the Diophantine-system layer and the Contejean–Devie
   Hilbert-basis solver, including brute-force completeness checks and
   the Pottier norm bound (Theorem 5.6). *)

let prop name ?(count = 50) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let sys rows ~num_vars = Diophantine.make (Array.of_list (List.map Array.of_list rows)) ~num_vars

(* -- Diophantine ---------------------------------------------------------- *)

let test_eval () =
  let s = sys [ [ 1; -2; 0 ]; [ 0; 1; 1 ] ] ~num_vars:3 in
  Alcotest.(check (array int)) "A·y" [| -3; 3 |] (Diophantine.eval s [| 1; 2; 1 |]);
  Alcotest.(check bool) "solution geq" false (Diophantine.is_solution_geq s [| 1; 2; 1 |]);
  Alcotest.(check bool) "solution eq" true
    (Diophantine.is_solution_eq s [| 0; 0; 0 |]);
  Alcotest.check_raises "arity" (Invalid_argument "Diophantine.eval: arity mismatch")
    (fun () -> ignore (Diophantine.eval s [| 1 |]))

let test_pottier_bound_value () =
  let s = sys [ [ 1; -1 ] ] ~num_vars:2 in
  (* (1 + 2)^1 = 3 *)
  Alcotest.(check string) "bound" "3" (Bignat.to_string (Diophantine.pottier_bound s))

(* -- solve_eq ------------------------------------------------------------- *)

let test_eq_simple () =
  let s = sys [ [ 1; -1 ] ] ~num_vars:2 in
  Alcotest.(check (list (array int))) "x=y basis" [ [| 1; 1 |] ]
    (Hilbert_basis.solve_eq s)

let test_eq_ratio () =
  let s = sys [ [ 2; -3 ] ] ~num_vars:2 in
  Alcotest.(check (list (array int))) "2x=3y" [ [| 3; 2 |] ] (Hilbert_basis.solve_eq s)

let test_eq_two_constraints () =
  (* x1 = x2 and x2 = x3: basis {(1,1,1)} *)
  let s = sys [ [ 1; -1; 0 ]; [ 0; 1; -1 ] ] ~num_vars:3 in
  Alcotest.(check (list (array int))) "chain" [ [| 1; 1; 1 |] ] (Hilbert_basis.solve_eq s)

let test_eq_classic () =
  (* x + y = z + w: four minimal solutions *)
  let s = sys [ [ 1; 1; -1; -1 ] ] ~num_vars:4 in
  let basis = Hilbert_basis.solve_eq s in
  Alcotest.(check int) "four elements" 4 (List.length basis);
  Alcotest.(check bool) "verified minimal" true
    (Hilbert_basis.verify_minimal s ~eq:true basis)

let test_eq_infeasible_positive () =
  (* x1 + x2 = -x3 - ... no: take x + 1y with all positive coefficients:
     only the zero solution exists, so the basis is empty *)
  let s = sys [ [ 1; 2 ] ] ~num_vars:2 in
  Alcotest.(check (list (array int))) "empty basis" [] (Hilbert_basis.solve_eq s)

let test_scalar_criterion_ablation () =
  (* with the criterion the search terminates instantly; without it the
     frontier keeps growing along non-decreasing directions and the
     budget must stop it *)
  let s = sys [ [ 1; -1 ] ] ~num_vars:2 in
  Alcotest.(check (list (array int))) "criterion finds the basis" [ [| 1; 1 |] ]
    (Hilbert_basis.solve_eq s);
  Alcotest.(check bool) "no criterion diverges into the budget" true
    (match Hilbert_basis.solve_eq ~scalar_criterion:false ~max_candidates:2000 s with
     | _ -> false
     | exception Obs.Budget.Exceeded _ -> true)

let test_eq_budget () =
  let s = sys [ [ 1; -1 ] ] ~num_vars:2 in
  (* the typed budget exception must identify the source, report how
     much was consumed, and carry a sound partial basis *)
  match Hilbert_basis.solve_eq ~scalar_criterion:false ~max_candidates:1 s with
  | _ -> Alcotest.fail "budget of 1 candidate not enforced"
  | exception Obs.Budget.Exceeded info ->
    Alcotest.(check string) "source" "hilbert.solve_eq" info.Obs.Budget.source;
    Alcotest.(check string) "resource" "candidates" info.Obs.Budget.resource;
    Alcotest.(check bool) "consumed over limit" true
      (List.assoc "candidates" info.Obs.Budget.consumed
       > info.Obs.Budget.limit);
    (match info.Obs.Budget.partial with
     | Hilbert_basis.Partial_basis partial ->
       Alcotest.(check bool) "partial elements are solutions" true
         (List.for_all (Diophantine.is_solution_eq s) partial)
     | _ -> Alcotest.fail "expected Partial_basis in the budget exception")

(* brute-force minimal solutions for small systems *)
let brute_minimal_eq s ~bound =
  let v = s.Diophantine.num_vars in
  let sols = ref [] in
  let y = Array.make v 0 in
  let rec go i =
    if i = v then begin
      if Array.exists (fun x -> x > 0) y && Diophantine.is_solution_eq s y then
        sols := Array.copy y :: !sols
    end
    else
      for x = 0 to bound do
        y.(i) <- x;
        go (i + 1)
      done
  in
  go 0;
  let leq a b = Array.for_all2 (fun x y -> x <= y) a b in
  List.filter
    (fun a -> not (List.exists (fun b -> b <> a && leq b a) !sols))
    !sols
  |> List.sort_uniq Stdlib.compare

let arb_small_system =
  QCheck.make
    ~print:(fun (rows, v) ->
      Printf.sprintf "%d vars: %s" v
        (String.concat " | "
           (List.map
              (fun r -> String.concat "," (List.map string_of_int (Array.to_list r)))
              rows)))
    QCheck.Gen.(
      int_range 2 3 >>= fun v ->
      list_size (int_range 1 2) (array_size (return v) (int_range (-2) 2)) >|= fun rows ->
      (rows, v))

let eq_completeness_prop =
  prop "solve_eq complete vs brute force" ~count:60 arb_small_system
    (fun (rows, v) ->
      let s = Diophantine.make (Array.of_list rows) ~num_vars:v in
      let computed = List.sort_uniq Stdlib.compare (Hilbert_basis.solve_eq s) in
      (* brute-force bound: Pottier's norm bound caps minimal solutions *)
      let bound =
        Stdlib.min 12 (Option.value (Bignat.to_int_opt (Diophantine.pottier_bound s)) ~default:12)
      in
      let brute =
        List.filter
          (fun a -> Array.for_all (fun x -> x <= bound) a)
          (brute_minimal_eq s ~bound)
      in
      (* every brute-force minimal solution within the bound must appear *)
      List.for_all (fun b -> List.mem b computed) brute
      && Hilbert_basis.verify_minimal s ~eq:true computed)

(* -- solve_geq ------------------------------------------------------------- *)

let test_geq_simple () =
  let s = sys [ [ 1; -1 ] ] ~num_vars:2 in
  Alcotest.(check (list (array int))) "x>=y" [ [| 1; 0 |]; [| 1; 1 |] ]
    (List.sort Stdlib.compare (Hilbert_basis.solve_geq s))

let test_geq_generation () =
  let s = sys [ [ 2; -3 ]; [ -1; 1 ] ] ~num_vars:2 in
  let basis = Hilbert_basis.solve_geq s in
  (* pick a few solutions and decompose them over the basis *)
  List.iter
    (fun y ->
      if Diophantine.is_solution_geq s y then begin
        match Hilbert_basis.decompose_geq s ~basis y with
        | Some parts ->
          let total = Array.make 2 0 in
          List.iter (Array.iteri (fun i x -> total.(i) <- total.(i) + x)) parts;
          Alcotest.(check (array int)) "decomposition sums" y total
        | None -> Alcotest.failf "no decomposition for a solution"
      end)
    [ [| 3; 2 |]; [| 6; 4 |]; [| 9; 8 |]; [| 30; 20 |] ]

let test_decompose_eq () =
  let s = sys [ [ 1; -1 ] ] ~num_vars:2 in
  let basis = Hilbert_basis.solve_eq s in
  (match Hilbert_basis.decompose_eq s ~basis [| 4; 4 |] with
   | Some parts -> Alcotest.(check int) "four parts" 4 (List.length parts)
   | None -> Alcotest.fail "decomposition failed");
  Alcotest.(check bool) "non-solution rejected" true
    (Hilbert_basis.decompose_eq s ~basis [| 2; 1 |] = None)

let geq_soundness_prop =
  prop "solve_geq returns solutions within Pottier's bound" ~count:40
    arb_small_system (fun (rows, v) ->
      let s = Diophantine.make (Array.of_list rows) ~num_vars:v in
      let basis = Hilbert_basis.solve_geq s in
      let bound = Diophantine.pottier_bound s in
      List.for_all
        (fun y ->
          Diophantine.is_solution_geq s y
          && Bignat.compare
               (Bignat.of_int (Array.fold_left ( + ) 0 y))
               bound
             <= 0)
        basis)

let geq_generation_prop =
  prop "every small geq solution decomposes over the basis" ~count:40
    arb_small_system (fun (rows, v) ->
      let s = Diophantine.make (Array.of_list rows) ~num_vars:v in
      let basis = Hilbert_basis.solve_geq s in
      (* enumerate solutions with coordinates <= 4 and decompose them *)
      let y = Array.make v 0 in
      let ok = ref true in
      let rec go i =
        if i = v then begin
          if Diophantine.is_solution_geq s y then
            match Hilbert_basis.decompose_geq s ~basis (Array.copy y) with
            | Some _ -> ()
            | None -> ok := false
        end
        else
          for x = 0 to 4 do
            y.(i) <- x;
            go (i + 1)
          done
      in
      go 0;
      !ok)

let () =
  Alcotest.run "hilbert"
    [
      ( "diophantine",
        [
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "pottier bound" `Quick test_pottier_bound_value;
        ] );
      ( "solve-eq",
        [
          Alcotest.test_case "simple" `Quick test_eq_simple;
          Alcotest.test_case "ratio" `Quick test_eq_ratio;
          Alcotest.test_case "two constraints" `Quick test_eq_two_constraints;
          Alcotest.test_case "classic 4-var" `Quick test_eq_classic;
          Alcotest.test_case "positive-only" `Quick test_eq_infeasible_positive;
          Alcotest.test_case "budget" `Quick test_eq_budget;
          Alcotest.test_case "scalar criterion ablation" `Quick test_scalar_criterion_ablation;
          eq_completeness_prop;
        ] );
      ( "solve-geq",
        [
          Alcotest.test_case "simple" `Quick test_geq_simple;
          Alcotest.test_case "generation" `Quick test_geq_generation;
          Alcotest.test_case "decompose eq" `Quick test_decompose_eq;
          geq_soundness_prop;
          geq_generation_prop;
        ] );
    ]
