(* Tests for Intvec and Mset: lattice/order laws of the multiset algebra
   underlying configurations (Section 2.1 of the paper). *)

let prop name ?(count = 300) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let pp_vec v =
  "[" ^ String.concat ";" (Array.to_list (Array.map string_of_int v)) ^ "]"

let gen_vec ~dim ~lo ~hi =
  QCheck.Gen.(array_size (return dim) (int_range lo hi))

let arb_zvec = QCheck.make ~print:pp_vec (gen_vec ~dim:5 ~lo:(-10) ~hi:10)

let arb_mset =
  QCheck.make
    ~print:(fun m -> pp_vec (Mset.to_intvec m))
    QCheck.Gen.(gen_vec ~dim:5 ~lo:0 ~hi:10 >|= Mset.of_array)

(* -- Intvec -------------------------------------------------------------- *)

let test_intvec_basic () =
  let v = Intvec.init 4 (fun i -> i - 1) in
  Alcotest.(check int) "dim" 4 (Intvec.dim v);
  Alcotest.(check int) "get" 2 (Intvec.get v 3);
  Alcotest.(check int) "norm1" 4 (Intvec.norm1 v);
  Alcotest.(check int) "norm_inf" 2 (Intvec.norm_inf v);
  Alcotest.(check int) "sum" 2 (Intvec.sum_coords v);
  Alcotest.(check (list int)) "support" [ 0; 2; 3 ] (Intvec.support v);
  Alcotest.(check bool) "nonneg" false (Intvec.is_nonnegative v)

let test_intvec_set_functional () =
  let v = Intvec.zero 3 in
  let v' = Intvec.set v 1 7 in
  Alcotest.(check int) "updated" 7 (Intvec.get v' 1);
  Alcotest.(check int) "original untouched" 0 (Intvec.get v 1)

let intvec_props =
  [
    prop "add commutative" QCheck.(pair arb_zvec arb_zvec) (fun (u, v) ->
        Intvec.equal (Intvec.add u v) (Intvec.add v u));
    prop "sub inverts add" QCheck.(pair arb_zvec arb_zvec) (fun (u, v) ->
        Intvec.equal (Intvec.sub (Intvec.add u v) v) u);
    prop "neg involutive" arb_zvec (fun v -> Intvec.equal v (Intvec.neg (Intvec.neg v)));
    prop "leq partial order antisym" QCheck.(pair arb_zvec arb_zvec) (fun (u, v) ->
        (not (Intvec.leq u v && Intvec.leq v u)) || Intvec.equal u v);
    prop "min is lower bound" QCheck.(pair arb_zvec arb_zvec) (fun (u, v) ->
        let m = Intvec.pointwise_min u v in
        Intvec.leq m u && Intvec.leq m v);
    prop "max is upper bound" QCheck.(pair arb_zvec arb_zvec) (fun (u, v) ->
        let m = Intvec.pointwise_max u v in
        Intvec.leq u m && Intvec.leq v m);
    prop "norm1 triangle" QCheck.(pair arb_zvec arb_zvec) (fun (u, v) ->
        Intvec.norm1 (Intvec.add u v) <= Intvec.norm1 u + Intvec.norm1 v);
    prop "scale additive" QCheck.(pair arb_zvec (int_range 0 5)) (fun (v, k) ->
        Intvec.equal (Intvec.scale (k + 1) v) (Intvec.add v (Intvec.scale k v)));
    prop "hash respects equality" arb_zvec (fun v ->
        Intvec.hash v = Intvec.hash (Array.copy v));
    prop "compare_lex total" QCheck.(pair arb_zvec arb_zvec) (fun (u, v) ->
        let c = Intvec.compare_lex u v in
        (c = 0) = Intvec.equal u v);
  ]

(* -- Mset ---------------------------------------------------------------- *)

let test_mset_construction () =
  let m = Mset.of_list 4 [ (0, 2); (2, 1); (0, 1) ] in
  Alcotest.(check int) "accumulates" 3 (Mset.get m 0);
  Alcotest.(check int) "size" 4 (Mset.size m);
  Alcotest.(check (list int)) "support" [ 0; 2 ] (Mset.support m);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Mset.of_array: negative coordinate") (fun () ->
      ignore (Mset.of_array [| 1; -1 |]))

let test_mset_singleton () =
  let s = Mset.singleton 3 1 in
  Alcotest.(check int) "size 1" 1 (Mset.size s);
  Alcotest.(check int) "count" 1 (Mset.get s 1);
  Alcotest.(check int) "count_on" 1 (Mset.count_on s [ 0; 1 ])

let test_mset_add_delta () =
  let m = Mset.of_list 3 [ (0, 2) ] in
  Alcotest.(check bool) "feasible" true (Mset.add_delta m [| -1; 1; 0 |] <> None);
  Alcotest.(check bool) "infeasible" true (Mset.add_delta m [| -3; 1; 0 |] = None)

let mset_props =
  [
    prop "size additive" QCheck.(pair arb_mset arb_mset) (fun (a, b) ->
        Mset.size (Mset.add a b) = Mset.size a + Mset.size b);
    prop "sub_opt defined iff leq" QCheck.(pair arb_mset arb_mset) (fun (a, b) ->
        (Mset.sub_opt a b <> None) = Mset.leq b a);
    prop "sub recomposes" QCheck.(pair arb_mset arb_mset) (fun (a, b) ->
        match Mset.sub_opt (Mset.add a b) b with
        | Some d -> Mset.equal d a
        | None -> false);
    prop "leq monotone under add" QCheck.(triple arb_mset arb_mset arb_mset)
      (fun (a, b, c) ->
        (not (Mset.leq a b)) || Mset.leq (Mset.add a c) (Mset.add b c));
    prop "min/max lattice absorption" QCheck.(pair arb_mset arb_mset) (fun (a, b) ->
        Mset.equal
          (Mset.pointwise_max a (Mset.pointwise_min a b))
          a);
    prop "scale multiplies size" QCheck.(pair arb_mset (int_range 0 6)) (fun (a, k) ->
        Mset.size (Mset.scale k a) = k * Mset.size a);
    prop "compare is total order" QCheck.(pair arb_mset arb_mset) (fun (a, b) ->
        (Mset.compare a b = 0) = Mset.equal a b);
  ]

(* -- packed representation ------------------------------------------------- *)

let arb_packable =
  QCheck.make
    ~print:(fun m -> pp_vec (Mset.to_intvec m))
    QCheck.Gen.(
      int_range 1 Mset.max_packed_dim >>= fun dim ->
      gen_vec ~dim ~lo:0 ~hi:Mset.max_packed_count >|= Mset.of_array)

let packed_props =
  [
    prop "unpack inverts pack" arb_packable (fun c ->
        Mset.equal c (Mset.unpack ~dim:(Mset.dim c) (Mset.pack c)));
    prop "pack is strictly monotone in the reverse-lex order" ~count:200
      QCheck.(pair arb_packable arb_packable)
      (fun (a, b) ->
        Mset.dim a <> Mset.dim b
        || (Mset.pack a = Mset.pack b) = Mset.equal a b);
    (* packed firing: adding a packed displacement is exact whenever the
       unpacked result stays a multiset in range — the invariant the
       packed configuration graphs rely on *)
    prop "pack_delta commutes with add_delta" ~count:300
      QCheck.(
        pair arb_packable
          (make ~print:pp_vec (gen_vec ~dim:Mset.max_packed_dim ~lo:(-3) ~hi:3)))
      (fun (c, d) ->
        Mset.dim c <> Mset.max_packed_dim
        ||
        match Mset.add_delta c d with
        | None -> QCheck.assume_fail ()
        | Some c' ->
          (not (Mset.packable c')) || Mset.pack c + Mset.pack_delta d = Mset.pack c')
  ]

let () =
  Alcotest.run "multiset"
    [
      ( "intvec",
        [
          Alcotest.test_case "basics" `Quick test_intvec_basic;
          Alcotest.test_case "functional set" `Quick test_intvec_set_functional;
        ]
        @ intvec_props );
      ( "mset",
        [
          Alcotest.test_case "construction" `Quick test_mset_construction;
          Alcotest.test_case "singleton" `Quick test_mset_singleton;
          Alcotest.test_case "add_delta" `Quick test_mset_add_delta;
        ]
        @ mset_props );
      ("packed", packed_props);
    ]
