(* The observability layer: atomic counter totals under concurrent
   domains, well-nestedness of span streams, JSON snapshot round-trips,
   progress throttling — and the regression that matters most: enabling
   metrics must not change a single byte of the ensemble's aggregate
   output. *)

let prop name ?(count = 100) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let with_metrics f =
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled false) f

(* fresh names per call so properties don't see earlier counts *)
let fresh =
  let k = ref 0 in
  fun prefix ->
    incr k;
    Printf.sprintf "test.%s%d" prefix !k

(* -- metrics -------------------------------------------------------------- *)

let concurrent_counter_prop =
  prop "counter total under concurrent domain increments" ~count:20
    QCheck.(pair (int_range 1 4) (int_range 1 2000))
    (fun (domains, per_domain) ->
      with_metrics (fun () ->
          let c = Obs.Metrics.counter (fresh "concurrent") in
          let pool =
            List.init domains (fun _ ->
                Domain.spawn (fun () ->
                    for _ = 1 to per_domain do
                      Obs.Metrics.incr c
                    done))
          in
          List.iter Domain.join pool;
          Obs.Metrics.value c = domains * per_domain))

let test_disabled_mutations_are_noops () =
  Obs.Metrics.set_enabled false;
  let c = Obs.Metrics.counter (fresh "noop") in
  let g = Obs.Metrics.gauge (fresh "noop") in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 41;
  Obs.Metrics.set g 3.0;
  Alcotest.(check int) "counter untouched" 0 (Obs.Metrics.value c);
  Alcotest.(check (float 0.0)) "gauge untouched" 0.0 (Obs.Metrics.gauge_value g)

let test_registration_is_idempotent () =
  let name = fresh "idem" in
  let c = Obs.Metrics.counter name in
  with_metrics (fun () -> Obs.Metrics.add c 5);
  let c' = Obs.Metrics.counter name in
  Alcotest.(check int) "same cell" 5 (Obs.Metrics.value c');
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument
       (Printf.sprintf "Obs.Metrics: %S already registered with a different kind"
          name))
    (fun () -> ignore (Obs.Metrics.gauge name))

let test_diff_drops_quiet_metrics () =
  with_metrics (fun () ->
      let c = Obs.Metrics.counter (fresh "active") in
      let _quiet = Obs.Metrics.counter (fresh "quiet") in
      let before = Obs.Metrics.snapshot () in
      Obs.Metrics.add c 7;
      (* GC/RSS gauges legitimately move between snapshots; the test is
         about the test.* cells staying quiet *)
      let d =
        Obs.Metrics.diff ~before ~after:(Obs.Metrics.snapshot ())
        |> List.filter (fun (name, _) ->
               String.length name >= 5 && String.sub name 0 5 = "test.")
      in
      match d with
      | [ (_, Obs.Metrics.Counter 7) ] -> ()
      | _ -> Alcotest.failf "unexpected diff of %d entries" (List.length d))

(* merge is what a coordinator does with the per-heartbeat diffs a
   worker streams up: applying the diff to the before-snapshot must
   reconstruct the after-snapshot, for counters and histograms both *)
let test_merge_inverts_diff () =
  with_metrics (fun () ->
      let c = Obs.Metrics.counter (fresh "merge_c") in
      let h =
        Obs.Metrics.histogram ~bounds:[| 1.0; 10.0 |] (fresh "merge_h")
      in
      let keep = List.filter (fun (n, _) -> String.length n >= 5 && String.sub n 0 5 = "test.") in
      Obs.Metrics.add c 3;
      Obs.Metrics.observe h 0.5;
      let before = keep (Obs.Metrics.snapshot ()) in
      Obs.Metrics.add c 4;
      Obs.Metrics.observe h 5.0;
      Obs.Metrics.observe h 100.0;
      let after = keep (Obs.Metrics.snapshot ()) in
      let d = Obs.Metrics.diff ~before ~after in
      let merged = Obs.Metrics.merge before d in
      Alcotest.(check bool) "merge before (diff before after) = after" true
        (List.sort compare merged = List.sort compare after))

let test_merge_new_and_mismatched () =
  let base = [ ("a", Obs.Metrics.Counter 2); ("g", Obs.Metrics.Gauge 1.0) ] in
  let delta =
    [ ("a", Obs.Metrics.Counter 5); ("b", Obs.Metrics.Counter 1);
      ("g", Obs.Metrics.Gauge 9.0) ]
  in
  let m = Obs.Metrics.merge base delta in
  Alcotest.(check bool) "counters add" true
    (List.assoc_opt "a" m = Some (Obs.Metrics.Counter 7));
  Alcotest.(check bool) "new entries appear" true
    (List.assoc_opt "b" m = Some (Obs.Metrics.Counter 1));
  Alcotest.(check bool) "gauges take the delta value" true
    (List.assoc_opt "g" m = Some (Obs.Metrics.Gauge 9.0))

let test_snapshot_publishes_process_stats () =
  with_metrics (fun () ->
      let s = Obs.Metrics.snapshot () in
      List.iter
        (fun name ->
          match List.assoc_opt name s with
          | Some (Obs.Metrics.Gauge v) ->
            Alcotest.(check bool)
              (name ^ " is a nonnegative gauge")
              true (v >= 0.0)
          | _ -> Alcotest.failf "%s missing from snapshot" name)
        [
          "gc.minor_collections"; "gc.major_collections"; "gc.heap_words";
          "process.max_rss_kb";
        ];
      (* on Linux the RSS peak is real and strictly positive *)
      if Sys.file_exists "/proc/self/status" then
        match List.assoc_opt "process.max_rss_kb" s with
        | Some (Obs.Metrics.Gauge v) ->
          Alcotest.(check bool) "max_rss_kb > 0" true (v > 0.0)
        | _ -> Alcotest.fail "process.max_rss_kb missing")

let test_histogram_quantiles () =
  with_metrics (fun () ->
      let name = fresh "quant" in
      let h = Obs.Metrics.histogram ~bounds:[| 10.0; 20.0; 30.0 |] name in
      (* counts per bucket: le10 -> 1, le20 -> 2, le30 -> 3, inf -> 1 *)
      List.iter (Obs.Metrics.observe h)
        [ 5.0; 15.0; 15.0; 25.0; 25.0; 25.0; 35.0 ];
      match List.assoc_opt name (Obs.Metrics.snapshot ()) with
      | Some v ->
        let q p = Option.get (Obs.Metrics.quantile v p) in
        (* rank 3.5 of 7 lands in the (20,30] bucket at fraction 1/6 *)
        Alcotest.(check (float 1e-9)) "p50" (20.0 +. (10.0 /. 6.0)) (q 0.5);
        (* rank 6.3 overflows into the +inf bucket: its lower edge *)
        Alcotest.(check (float 1e-9)) "p90" 30.0 (q 0.9);
        Alcotest.(check (float 1e-9)) "p99" 30.0 (q 0.99);
        (* rank 0 clamps into the first occupied bucket *)
        Alcotest.(check bool) "p0 is finite" true (Float.is_finite (q 0.0));
        Alcotest.check_raises "q out of range"
          (Invalid_argument "Obs.Metrics.quantile: q must be in [0,1]")
          (fun () -> ignore (q 1.5))
      | None -> Alcotest.fail "histogram not in snapshot")

let test_quantiles_of_trial_steps () =
  (* the real ensemble.trial_steps histogram: quantile estimates must
     be monotone and land within the observed range *)
  Obs.Metrics.reset ();
  with_metrics (fun () ->
      let before = Obs.Metrics.snapshot () in
      let e =
        Ensemble.run_input ~jobs:2 ~seed:7 ~trials:20 (Flock.succinct 2)
          [| 10 |]
      in
      ignore (Ensemble.summary e);
      let d = Obs.Metrics.diff ~before ~after:(Obs.Metrics.snapshot ()) in
      match List.assoc_opt "ensemble.trial_steps" d with
      | Some (Obs.Metrics.Histogram { count; _ } as v) ->
        Alcotest.(check int) "one observation per trial" 20 count;
        let q p = Option.get (Obs.Metrics.quantile v p) in
        Alcotest.(check bool) "p50 <= p90 <= p99" true
          (q 0.5 <= q 0.9 && q 0.9 <= q 0.99);
        Alcotest.(check bool) "positive" true (q 0.5 > 0.0)
      | _ -> Alcotest.fail "ensemble.trial_steps not recorded");
  Obs.Metrics.reset ()

let test_histogram_buckets () =
  with_metrics (fun () ->
      let name = fresh "hist" in
      let h = Obs.Metrics.histogram ~bounds:[| 1.0; 10.0 |] name in
      List.iter (Obs.Metrics.observe h) [ 0.5; 5.0; 50.0; 500.0 ];
      match List.assoc_opt name (Obs.Metrics.snapshot ()) with
      | Some (Obs.Metrics.Histogram { counts; sum; count; _ }) ->
        Alcotest.(check (array int)) "bucket counts" [| 1; 1; 2 |] counts;
        Alcotest.(check (float 1e-9)) "sum" 555.5 sum;
        Alcotest.(check int) "count" 4 count
      | _ -> Alcotest.fail "histogram not in snapshot")

(* -- JSON ----------------------------------------------------------------- *)

let json_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [
              return Obs.Json.Null;
              map (fun b -> Obs.Json.Bool b) bool;
              map (fun i -> Obs.Json.Int i) int;
              map (fun f -> Obs.Json.Float f) float;
              map (fun s -> Obs.Json.String s) (string_size (int_bound 12));
            ]
        in
        if n = 0 then leaf
        else
          frequency
            [
              (3, leaf);
              ( 1,
                map (fun l -> Obs.Json.List l)
                  (list_size (int_bound 4) (self (n / 2))) );
              ( 1,
                map (fun l -> Obs.Json.Obj l)
                  (list_size (int_bound 4)
                     (pair (string_size (int_bound 8)) (self (n / 2)))) );
            ]))

let rec json_finite = function
  | Obs.Json.Float f -> Float.is_finite f
  | Obs.Json.List l -> List.for_all json_finite l
  | Obs.Json.Obj l -> List.for_all (fun (_, v) -> json_finite v) l
  | _ -> true

let json_roundtrip_prop =
  prop "Json.parse inverts Json.to_string" ~count:500
    (QCheck.make ~print:(fun j -> Obs.Json.to_string j) json_gen)
    (fun j ->
      QCheck.assume (json_finite j);
      Obs.Json.parse (Obs.Json.to_string j) = Ok j)

let snapshot_roundtrip_prop =
  prop "metric snapshot survives a JSON round-trip" ~count:50
    QCheck.(triple (int_range 0 10_000) (float_range 0.0 1e9) (small_list pos_float))
    (fun (n, g, obs) ->
      with_metrics (fun () ->
          let c = Obs.Metrics.counter (fresh "rt_c") in
          let gg = Obs.Metrics.gauge (fresh "rt_g") in
          let h = Obs.Metrics.histogram (fresh "rt_h") in
          Obs.Metrics.add c n;
          Obs.Metrics.set gg g;
          List.iter (Obs.Metrics.observe h) obs;
          let s = Obs.Metrics.snapshot () in
          Obs.Metrics.of_json (Obs.Metrics.to_json s) = Ok s))

(* the committed bench baseline: every section's metrics block must
   survive Metrics.of_json/to_json byte-stably (quantiles are derived,
   so re-rendering recomputes identical values), and the whole file
   must round-trip through the History record type *)
let test_bench_results_roundtrip () =
  let path = "../BENCH_results.json" in
  let contents = In_channel.with_open_text path In_channel.input_all in
  match Obs.Json.parse contents with
  | Error e -> Alcotest.failf "BENCH_results.json does not parse: %s" e
  | Ok (Obs.Json.Obj fields as doc) ->
    let sections =
      match List.assoc_opt "sections" fields with
      | Some (Obs.Json.List l) -> l
      | _ -> Alcotest.fail "no sections list"
    in
    Alcotest.(check bool) "has sections" true (List.length sections > 0);
    List.iter
      (function
        | Obs.Json.Obj sfields ->
          let id =
            match List.assoc_opt "id" sfields with
            | Some (Obs.Json.String id) -> id
            | _ -> "?"
          in
          let metrics =
            match List.assoc_opt "metrics" sfields with
            | Some m -> m
            | None -> Alcotest.failf "section %s has no metrics" id
          in
          let original = Obs.Json.to_string metrics in
          (match Obs.Metrics.of_json original with
           | Error e -> Alcotest.failf "section %s metrics do not parse: %s" id e
           | Ok snap ->
             Alcotest.(check string)
               (Printf.sprintf "section %s metrics round-trip byte-stably" id)
               original
               (Obs.Metrics.to_json snap))
        | _ -> Alcotest.fail "section is not an object")
      sections;
    (match Obs.History.run_of_json doc with
     | Error e -> Alcotest.failf "History.run_of_json: %s" e
     | Ok run ->
       Alcotest.(check bool) "meta present (ppbench/v2)" true
         (run.Obs.History.meta <> None);
       Alcotest.(check string) "whole file round-trips byte-stably"
         (String.trim contents)
         (Obs.Json.to_string (Obs.History.run_to_json run)))
  | Ok _ -> Alcotest.fail "BENCH_results.json is not an object"

(* -- tracing -------------------------------------------------------------- *)

(* random span trees executed depth-first on the calling domain *)
type span_tree = Span of span_tree list

let span_tree_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n = 0 then return (Span [])
        else map (fun kids -> Span kids) (list_size (int_bound 3) (self (n / 2)))))

let run_spans trees =
  let rec go i (Span kids) =
    Obs.Trace.with_span (Printf.sprintf "s%d" i) (fun () -> List.iteri go kids)
  in
  List.iteri go trees

let well_nested events =
  (* events arrive in completion order; same-domain spans must be
     properly nested or disjoint, and completion times nondecreasing *)
  let ends_monotone =
    let rec go last = function
      | [] -> true
      | e :: rest ->
        let fin = Int64.add e.Obs.Trace.ts_ns e.Obs.Trace.dur_ns in
        Int64.compare last fin <= 0 && go fin rest
    in
    go Int64.min_int events
  in
  let nested_or_disjoint a b =
    let a0 = a.Obs.Trace.ts_ns
    and a1 = Int64.add a.Obs.Trace.ts_ns a.Obs.Trace.dur_ns in
    let b0 = b.Obs.Trace.ts_ns
    and b1 = Int64.add b.Obs.Trace.ts_ns b.Obs.Trace.dur_ns in
    let inside x0 x1 y0 y1 = Int64.compare y0 x0 <= 0 && Int64.compare x1 y1 <= 0 in
    inside a0 a1 b0 b1 || inside b0 b1 a0 a1
    || Int64.compare a1 b0 <= 0
    || Int64.compare b1 a0 <= 0
  in
  let rec pairs = function
    | [] -> true
    | e :: rest ->
      List.for_all
        (fun e' -> e.Obs.Trace.tid <> e'.Obs.Trace.tid || nested_or_disjoint e e')
        rest
      && pairs rest
  in
  ends_monotone && pairs events

let span_nesting_prop =
  prop "span streams are well-nested with monotone completion times" ~count:50
    (QCheck.make QCheck.Gen.(list_size (int_bound 4) span_tree_gen))
    (fun trees ->
      Obs.Trace.start_memory ();
      run_spans trees;
      let events = Obs.Trace.stop () in
      let rec size (Span kids) = List.fold_left (fun a k -> a + size k) 1 kids in
      List.length events = List.fold_left (fun a k -> a + size k) 0 trees
      && well_nested events)

let test_span_emits_on_exception () =
  Obs.Trace.start_memory ();
  (try
     Obs.Trace.with_span "outer" (fun () ->
         Obs.Trace.with_span "inner" (fun () -> failwith "boom"))
   with Failure _ -> ());
  let events = Obs.Trace.stop () in
  Alcotest.(check (list string))
    "both spans emitted, inner first"
    [ "inner"; "outer" ]
    (List.map (fun e -> e.Obs.Trace.name) events)

let test_trace_file_is_valid_json () =
  let path = Filename.temp_file "obs_trace" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs.Trace.start_file path;
  Obs.Trace.with_span "a" ~cat:"test" (fun () ->
      Obs.Trace.with_span "b" ~args:[ ("k", "v") ] (fun () -> ());
      Obs.Trace.instant "mark");
  ignore (Obs.Trace.stop ());
  let contents = In_channel.with_open_text path In_channel.input_all in
  match Obs.Json.parse contents with
  | Ok (Obs.Json.List events) ->
    (* b, mark, a, plus the trace.stop footer *)
    Alcotest.(check int) "event count" 4 (List.length events);
    List.iter
      (function
        | Obs.Json.Obj fields ->
          Alcotest.(check bool) "has name" true (List.mem_assoc "name" fields);
          Alcotest.(check bool) "has ph" true (List.mem_assoc "ph" fields)
        | _ -> Alcotest.fail "event is not an object")
      events
  | Ok _ -> Alcotest.fail "trace is not a JSON array"
  | Error e -> Alcotest.failf "trace does not parse: %s" e

(* -- progress ------------------------------------------------------------- *)

let with_progress_capture f =
  let path = Filename.temp_file "obs_progress" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let out = Out_channel.open_text path in
  Obs.Progress.set_enabled true;
  let r =
    Fun.protect
      ~finally:(fun () ->
        Obs.Progress.set_enabled false;
        Out_channel.close out)
      (fun () -> f out)
  in
  (r, In_channel.with_open_text path In_channel.input_all)

let test_progress_throttles () =
  let (ticks, lines), output =
    with_progress_capture (fun out ->
        (* an hour-long interval: many ticks, no output *)
        let t = Obs.Progress.create ~interval_s:3600.0 ~out "quiet" in
        for _ = 1 to 10_000 do
          Obs.Progress.tick t (fun () -> "should never print")
        done;
        Obs.Progress.finish t (fun () -> "nor the final line");
        (* a zero interval: every tick prints *)
        let t' = Obs.Progress.create ~interval_s:0.0 ~out "chatty" in
        for i = 1 to 3 do
          Obs.Progress.tick t' (fun () -> Printf.sprintf "tick %d" i)
        done;
        Obs.Progress.finish t' (fun () -> "done");
        (Obs.Progress.lines t, Obs.Progress.lines t'))
  in
  Alcotest.(check int) "throttled reporter stayed silent" 0 ticks;
  Alcotest.(check int) "chatty reporter printed 3 ticks + finish" 4 lines;
  Alcotest.(check bool) "lines carry the label" true
    (String.length output > 0
    && List.for_all
         (fun l -> String.length l = 0 || String.sub l 0 1 = "[")
         (String.split_on_char '\n' output))

let test_progress_disabled_is_silent () =
  Obs.Progress.set_enabled false;
  let t = Obs.Progress.create ~interval_s:0.0 "off" in
  for _ = 1 to 100 do
    Obs.Progress.tick t (fun () -> Alcotest.fail "thunk forced while disabled")
  done;
  Alcotest.(check int) "no lines" 0 (Obs.Progress.lines t)

(* -- budget --------------------------------------------------------------- *)

let test_budget_exceeded_carries_stats () =
  match
    raise
      (Obs.Budget.exceeded ~source:"test.engine" ~resource:"nodes" ~limit:10.0
         ~consumed:[ ("nodes", 11.0); ("edges", 40.0) ]
         ())
  with
  | _ -> Alcotest.fail "unreachable"
  | exception Obs.Budget.Exceeded info ->
    Alcotest.(check string) "source" "test.engine" info.Obs.Budget.source;
    Alcotest.(check string) "resource" "nodes" info.Obs.Budget.resource;
    Alcotest.(check (float 0.0)) "limit" 10.0 info.Obs.Budget.limit;
    Alcotest.(check (float 0.0)) "consumed" 11.0
      (List.assoc "nodes" info.Obs.Budget.consumed);
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    let d = Obs.Budget.describe info in
    Alcotest.(check bool) "describe names the engine" true
      (contains d "test.engine")

let test_budget_deadline () =
  let d = Obs.Budget.deadline_in ~source:"test.deadline" 3600.0 in
  Alcotest.(check bool) "hour-long deadline not expired" false
    (Obs.Budget.expired d);
  Obs.Budget.raise_if_expired ~consumed:[] d;
  let d0 = Obs.Budget.deadline_in ~source:"test.deadline" 0.0 in
  Alcotest.(check bool) "zero deadline expires" true
    (let rec spin n = Obs.Budget.expired d0 || (n > 0 && spin (n - 1)) in
     spin 1_000_000);
  match Obs.Budget.raise_if_expired ~consumed:[ ("configs", 5.0) ] d0 with
  | () -> Alcotest.fail "expired deadline did not raise"
  | exception Obs.Budget.Exceeded info ->
    Alcotest.(check string) "resource is wall_s" "wall_s" info.Obs.Budget.resource;
    Alcotest.(check string) "source" "test.deadline" info.Obs.Budget.source

(* -- checkpoint ----------------------------------------------------------- *)

let with_temp_file f =
  let path = Filename.temp_file "obs_ckpt" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let sample_checkpoint () =
  let config = Obs.Json.Obj [ ("n", Obs.Json.Int 3); ("chunk", Obs.Json.Int 16) ] in
  let cp = Obs.Checkpoint.create ~config ~total_chunks:10 in
  Obs.Checkpoint.mark_done cp 0 (Obs.Json.Obj [ ("scanned", Obs.Json.Int 16) ]);
  Obs.Checkpoint.mark_done cp 7 (Obs.Json.Obj [ ("scanned", Obs.Json.Int 9) ]);
  cp

let checkpoints_equal a b =
  a.Obs.Checkpoint.config_hash = b.Obs.Checkpoint.config_hash
  && a.Obs.Checkpoint.total_chunks = b.Obs.Checkpoint.total_chunks
  && a.Obs.Checkpoint.state = b.Obs.Checkpoint.state

let test_checkpoint_roundtrip () =
  let cp = sample_checkpoint () in
  Alcotest.(check int) "two chunks done" 2 (Obs.Checkpoint.num_done cp);
  Alcotest.(check bool) "chunk 7 done" true (Obs.Checkpoint.is_done cp 7);
  Alcotest.(check bool) "chunk 3 not done" false (Obs.Checkpoint.is_done cp 3);
  match Obs.Checkpoint.of_json (Obs.Checkpoint.to_json cp) with
  | Error msg -> Alcotest.failf "of_json: %s" msg
  | Ok cp' ->
    Alcotest.(check bool) "JSON round-trip" true (checkpoints_equal cp cp')

let test_checkpoint_save_load () =
  with_temp_file (fun path ->
      let cp = sample_checkpoint () in
      Obs.Checkpoint.save ~path cp;
      (match Obs.Checkpoint.load path with
       | Error msg -> Alcotest.failf "load: %s" msg
       | Ok cp' ->
         Alcotest.(check bool) "file round-trip" true (checkpoints_equal cp cp'));
      (* a fresh snapshot of a different config must not validate
         against the old hash *)
      let other =
        Obs.Checkpoint.create
          ~config:(Obs.Json.Obj [ ("n", Obs.Json.Int 4) ])
          ~total_chunks:10
      in
      Alcotest.(check bool) "different config, different hash" false
        (other.Obs.Checkpoint.config_hash = cp.Obs.Checkpoint.config_hash))

let test_checkpoint_rejects_garbage () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc "{\"schema\": \"ppcheckpoint/v1\", \"total_ch";
      close_out oc;
      match Obs.Checkpoint.load path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "truncated snapshot must not load")

let test_checkpoint_writer_flush () =
  with_temp_file (fun path ->
      let cp =
        Obs.Checkpoint.create
          ~config:(Obs.Json.Obj [ ("n", Obs.Json.Int 2) ])
          ~total_chunks:5
      in
      (* huge thresholds: only note_done's threshold crossing or flush
         may write *)
      let w = Obs.Checkpoint.writer ~every_chunks:1000 ~every_s:1e9 ~path cp in
      Obs.Checkpoint.note_done w 2 Obs.Json.Null;
      Obs.Checkpoint.flush w;
      match Obs.Checkpoint.load path with
      | Error msg -> Alcotest.failf "load after flush: %s" msg
      | Ok cp' ->
        Alcotest.(check int) "flushed chunk present" 1
          (Obs.Checkpoint.num_done cp');
        Alcotest.(check bool) "chunk 2 done" true (Obs.Checkpoint.is_done cp' 2))

(* -- shutdown ------------------------------------------------------------- *)

let test_shutdown_install_idempotent () =
  Obs.Shutdown.install ();
  Obs.Shutdown.install ();
  Alcotest.(check bool) "no signal yet" false (Obs.Shutdown.requested ());
  Alcotest.(check bool) "no exit code yet" true (Obs.Shutdown.exit_code () = None);
  (* nesting with_graceful must restore the depth on both paths *)
  let r =
    Obs.Shutdown.with_graceful (fun () ->
        Obs.Shutdown.with_graceful (fun () -> 41) + 1)
  in
  Alcotest.(check int) "nested graceful regions" 42 r;
  (match
     Obs.Shutdown.with_graceful (fun () -> raise (Failure "boom"))
   with
   | _ -> Alcotest.fail "exception swallowed"
   | exception Failure _ -> ());
  Obs.Shutdown.exit_if_requested ()

(* -- clock ---------------------------------------------------------------- *)

let test_clock_monotone () =
  let a = Obs.Clock.now_ns () in
  let b = Obs.Clock.now_ns () in
  Alcotest.(check bool) "now_ns never goes backwards" true (Int64.compare a b <= 0);
  Alcotest.(check bool) "elapsed_s is nonnegative" true (Obs.Clock.elapsed_s a >= 0.0)

(* -- the determinism regression ------------------------------------------- *)

let test_metrics_do_not_perturb_ensemble () =
  let run () =
    let e =
      Ensemble.run_input ~jobs:3 ~seed:20260805 ~trials:24 (Flock.succinct 2)
        [| 12 |]
    in
    Ensemble.summary e
  in
  Obs.Metrics.set_enabled false;
  let plain = run () in
  let instrumented = with_metrics run in
  Obs.Metrics.reset ();
  Alcotest.(check string)
    "aggregate summary is byte-identical with metrics enabled" plain instrumented

(* -- span ids ------------------------------------------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let span_forest_prop =
  prop "sid/parent ids form a forest mirroring the nesting" ~count:50
    (QCheck.make QCheck.Gen.(list_size (int_bound 4) span_tree_gen))
    (fun trees ->
      Obs.Trace.start_memory ();
      run_spans trees;
      let events = Obs.Trace.stop () in
      let sids = List.map (fun e -> e.Obs.Trace.sid) events in
      let by_sid = List.map (fun e -> (e.Obs.Trace.sid, e)) events in
      let contained c p =
        Int64.compare p.Obs.Trace.ts_ns c.Obs.Trace.ts_ns <= 0
        && Int64.compare
             (Int64.add c.Obs.Trace.ts_ns c.Obs.Trace.dur_ns)
             (Int64.add p.Obs.Trace.ts_ns p.Obs.Trace.dur_ns)
           <= 0
      in
      (* ids are positive and unique, every non-root parent id names a
         recorded span on the same domain whose interval contains the
         child, and there is exactly one root per top-level span *)
      List.for_all (fun s -> s > 0) sids
      && List.length (List.sort_uniq compare sids) = List.length sids
      && List.for_all
           (fun e ->
             e.Obs.Trace.parent = 0
             ||
             match List.assoc_opt e.Obs.Trace.parent by_sid with
             | None -> false
             | Some p -> p.Obs.Trace.tid = e.Obs.Trace.tid && contained e p)
           events
      && List.length (List.filter (fun e -> e.Obs.Trace.parent = 0) events)
         = List.length trees)

(* -- events --------------------------------------------------------------- *)

let read_lines path =
  In_channel.with_open_text path In_channel.input_all
  |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")

let with_events f =
  let path = Filename.temp_file "obs_events" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Obs.Events.start_file path;
      let r = Fun.protect ~finally:Obs.Events.stop f in
      (r, read_lines path))

let obj_of_line l =
  match Obs.Json.parse l with
  | Ok (Obs.Json.Obj fields) -> fields
  | _ -> Alcotest.failf "event line is not a JSON object: %s" l

let ev_name fields =
  match List.assoc_opt "ev" fields with
  | Some (Obs.Json.String s) -> s
  | _ -> "?"

let test_events_format () =
  let (), lines =
    with_events (fun () ->
        Obs.Events.emit "test.plain";
        Obs.Events.emit ~severity:Obs.Events.Warn
          ~data:[ ("k", Obs.Json.Int 7) ]
          "test.warn";
        Obs.Trace.with_span "evspan" (fun () -> Obs.Events.emit "test.inside"))
  in
  match lines with
  | [] -> Alcotest.fail "empty events file"
  | header :: rest ->
    let h = obj_of_line header in
    Alcotest.(check bool) "header carries the schema" true
      (List.assoc_opt "schema" h = Some (Obs.Json.String "ppevents/v1"));
    Alcotest.(check bool) "header has t0_utc" true (List.mem_assoc "t0_utc" h);
    let recs = List.map obj_of_line rest in
    List.iter
      (fun r ->
        Alcotest.(check bool) "record has ts_s" true (List.mem_assoc "ts_s" r);
        Alcotest.(check bool) "record has utc" true (List.mem_assoc "utc" r);
        Alcotest.(check bool) "record has sev" true (List.mem_assoc "sev" r))
      recs;
    let find name = List.find_opt (fun r -> ev_name r = name) recs in
    (match find "test.warn" with
     | None -> Alcotest.fail "test.warn not recorded"
     | Some r ->
       Alcotest.(check bool) "severity renders as \"warn\"" true
         (List.assoc_opt "sev" r = Some (Obs.Json.String "warn"));
       (match List.assoc_opt "data" r with
        | Some (Obs.Json.Obj d) ->
          Alcotest.(check bool) "data payload survives" true
            (List.assoc_opt "k" d = Some (Obs.Json.Int 7))
        | _ -> Alcotest.fail "test.warn lost its data object"));
    (match find "test.inside" with
     | None -> Alcotest.fail "test.inside not recorded"
     | Some r ->
       Alcotest.(check bool) "span correlation id inside with_span" true
         (match List.assoc_opt "span" r with
          | Some (Obs.Json.Int s) -> s > 0
          | _ -> false));
    (match find "test.plain" with
     | None -> Alcotest.fail "test.plain not recorded"
     | Some r ->
       Alcotest.(check bool) "no span field outside any span" true
         (not (List.mem_assoc "span" r)));
    (match List.rev recs with
     | last :: _ ->
       Alcotest.(check string) "final record is events.stop" "events.stop"
         (ev_name last)
     | [] -> Alcotest.fail "no event records after the header")

let test_events_capture_budget_and_checkpoint () =
  let (), lines =
    with_events (fun () ->
        ignore
          (Obs.Budget.exceeded ~source:"test.ev" ~resource:"nodes" ~limit:1.0
             ~consumed:[ ("nodes", 2.0) ]
             ());
        with_temp_file (fun path ->
            let cp =
              Obs.Checkpoint.create
                ~config:(Obs.Json.Obj [ ("n", Obs.Json.Int 2) ])
                ~total_chunks:3
            in
            let w =
              Obs.Checkpoint.writer ~every_chunks:1000 ~every_s:1e9 ~path cp
            in
            Obs.Checkpoint.note_done w 1 Obs.Json.Null;
            Obs.Checkpoint.flush w))
  in
  let names = List.map (fun l -> ev_name (obj_of_line l)) (List.tl lines) in
  Alcotest.(check bool) "budget.exceeded recorded" true
    (List.mem "budget.exceeded" names);
  Alcotest.(check bool) "checkpoint.snapshot recorded" true
    (List.mem "checkpoint.snapshot" names)

(* the chunk partition of a scan is fixed by (space, chunk size), so the
   multiset of pool lease/done events must not depend on the domain
   count: only timestamps, domains and interleaving may differ *)
let canonical_events path =
  List.tl (read_lines path)
  |> List.filter_map (fun l ->
         let fields = obj_of_line l in
         if ev_name fields = "progress" then None
           (* progress is timer-driven: line count varies run to run *)
         else
           Some
             (Obs.Json.to_string
                (Obs.Json.Obj
                   (List.filter
                      (fun (k, _) ->
                        not (List.mem k [ "ts_s"; "utc"; "dom"; "span" ]))
                      fields))))
  |> List.sort compare

let test_events_jobs_invariant () =
  let run jobs =
    let path = Filename.temp_file "obs_ev_jobs" ".jsonl" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        Obs.Events.start_file path;
        let r =
          Fun.protect ~finally:Obs.Events.stop (fun () ->
              Busy_beaver.scan ~n:2 ~jobs ~chunk:7 ~sample:(300, 11) ())
        in
        (r.Busy_beaver.best_eta, canonical_events path))
  in
  let eta1, ev1 = run 1 in
  let eta3, ev3 = run 3 in
  Alcotest.(check int) "scan aggregates agree across jobs" eta1 eta3;
  Alcotest.(check bool) "pool chunk events were recorded" true
    (List.exists (fun l -> contains l "pool.lease") ev1);
  Alcotest.(check (list string))
    "events are jobs-invariant modulo timestamps" ev1 ev3

(* -- profiler ------------------------------------------------------------- *)

let test_profile_folded_output () =
  let path = Filename.temp_file "obs_profile" ".folded" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Obs.Profile.start ~interval_s:0.0005 ~path ();
      let deadline = Unix.gettimeofday () +. 10.0 in
      while Obs.Profile.samples () = 0 && Unix.gettimeofday () < deadline do
        Obs.Trace.with_span "prof_outer" (fun () ->
            Obs.Trace.with_span "prof_inner" (fun () -> Unix.sleepf 0.002))
      done;
      let sampled = Obs.Profile.samples () in
      Obs.Profile.stop ();
      Alcotest.(check bool) "sampler observed at least one stack" true
        (sampled > 0);
      let lines = read_lines path in
      Alcotest.(check bool) "folded output is non-empty" true (lines <> []);
      List.iter
        (fun l ->
          match String.rindex_opt l ' ' with
          | None -> Alcotest.failf "malformed folded line: %s" l
          | Some i ->
            Alcotest.(check bool)
              (Printf.sprintf "count parses in %S" l)
              true
              (int_of_string_opt
                 (String.sub l (i + 1) (String.length l - i - 1))
               <> None))
        lines;
      Alcotest.(check bool) "stacks name the test span" true
        (List.exists (fun l -> contains l "prof_outer") lines))

(* -- progress auto mode --------------------------------------------------- *)

let test_progress_auto_respects_tty () =
  let path = Filename.temp_file "obs_progress_auto" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      Obs.Progress.set_enabled false;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Obs.Progress.set_auto ();
      let out = Out_channel.open_text path in
      Fun.protect
        ~finally:(fun () -> Out_channel.close out)
        (fun () ->
          let t = Obs.Progress.create ~interval_s:0.0 ~out "auto" in
          for _ = 1 to 5 do
            Obs.Progress.tick t (fun () ->
                Alcotest.fail "thunk forced on a redirected auto reporter")
          done;
          Obs.Progress.finish t (fun () -> "nor the final line");
          Alcotest.(check int) "auto mode is silent on a non-tty channel" 0
            (Obs.Progress.lines t);
          Obs.Progress.set_enabled true;
          let t' = Obs.Progress.create ~interval_s:0.0 ~out "forced" in
          Obs.Progress.tick t' (fun () -> "line");
          Alcotest.(check int) "--progress forces output to the same channel"
            1 (Obs.Progress.lines t')))

let test_progress_records_events_when_redirected () =
  let (), lines =
    with_events (fun () ->
        Obs.Progress.set_auto ();
        let path = Filename.temp_file "obs_progress_ev" ".txt" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          (fun () ->
            let out = Out_channel.open_text path in
            Fun.protect
              ~finally:(fun () -> Out_channel.close out)
              (fun () ->
                let t = Obs.Progress.create ~interval_s:0.0 ~out "ev" in
                Obs.Progress.tick t (fun () -> "recorded");
                Alcotest.(check int) "still no display lines" 0
                  (Obs.Progress.lines t))))
  in
  let msgs =
    List.filter_map
      (fun l ->
        let fields = obj_of_line l in
        if ev_name fields <> "progress" then None
        else
          match List.assoc_opt "data" fields with
          | Some (Obs.Json.Obj d) ->
            (match List.assoc_opt "msg" d with
             | Some (Obs.Json.String m) -> Some m
             | _ -> None)
          | _ -> None)
      (List.tl lines)
  in
  Alcotest.(check (list string)) "tick recorded as a progress event"
    [ "recorded" ] msgs

(* -- prometheus exposition ------------------------------------------------ *)

let test_prometheus_conformance () =
  let snap =
    [
      ("scan.configs", Obs.Metrics.Counter 42);
      ("pool.queue depth-now", Obs.Metrics.Gauge 1.5);
      ( "verify.latency_s",
        Obs.Metrics.Histogram
          {
            bounds = [| 0.1; 1.0 |];
            counts = [| 2; 3; 1 |];
            sum = 3.25;
            count = 6;
          } );
    ]
  in
  let meta =
    {
      Obs.Run_meta.git_rev = "v1.0-\"quoted\"\\slash";
      hostname = "host\nname";
      ocaml_version = "5.1.1";
      jobs = 3;
      timestamp = "2026-08-07T00:00:00Z";
    }
  in
  let text = Obs.Export.prometheus_of_snapshot ~meta snap in
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
  in
  List.iter
    (fun fam ->
      Alcotest.(check bool) (fam ^ " has a HELP line") true
        (List.exists
           (fun l -> String.starts_with ~prefix:("# HELP " ^ fam ^ " ") l)
           lines);
      Alcotest.(check bool) (fam ^ " has a TYPE line") true
        (List.exists
           (fun l -> String.starts_with ~prefix:("# TYPE " ^ fam ^ " ") l)
           lines))
    [
      "pp_scan_configs";
      "pp_pool_queue_depth_now";
      "pp_verify_latency_s";
      "pp_build_info";
    ];
  (* every non-comment sample line belongs to a family introduced by
     HELP + TYPE above it *)
  let declared = Hashtbl.create 8 in
  List.iter
    (fun l ->
      match String.split_on_char ' ' l with
      | "#" :: "TYPE" :: fam :: _ -> Hashtbl.replace declared fam ()
      | _ when String.starts_with ~prefix:"# HELP " l -> ()
      | name_and_labels :: _ ->
        let fam =
          match String.index_opt name_and_labels '{' with
          | Some i -> String.sub name_and_labels 0 i
          | None -> name_and_labels
        in
        let base f suffix =
          if Filename.check_suffix f suffix then
            String.sub f 0 (String.length f - String.length suffix)
          else f
        in
        let fam = base (base (base fam "_bucket") "_sum") "_count" in
        Alcotest.(check bool)
          (Printf.sprintf "sample %s declared via TYPE" l)
          true (Hashtbl.mem declared fam)
      | [] -> ())
    lines;
  Alcotest.(check bool) "counter sample" true (List.mem "pp_scan_configs 42" lines);
  Alcotest.(check bool) "gauge name is sanitized" true
    (List.exists
       (fun l -> String.starts_with ~prefix:"pp_pool_queue_depth_now " l)
       lines);
  let buckets =
    List.filter_map
      (fun l ->
        if String.starts_with ~prefix:"pp_verify_latency_s_bucket" l then
          match String.split_on_char ' ' l with
          | [ _; n ] -> int_of_string_opt n
          | _ -> None
        else None)
      lines
  in
  Alcotest.(check (list int)) "buckets are cumulative and nondecreasing"
    [ 2; 5; 6 ] buckets;
  Alcotest.(check bool) "+Inf bucket equals _count" true
    (List.mem "pp_verify_latency_s_bucket{le=\"+Inf\"} 6" lines
    && List.mem "pp_verify_latency_s_count 6" lines);
  Alcotest.(check bool) "_sum present" true
    (List.exists
       (fun l -> String.starts_with ~prefix:"pp_verify_latency_s_sum " l)
       lines);
  match List.find_opt (fun l -> String.starts_with ~prefix:"pp_build_info{" l) lines with
  | None -> Alcotest.fail "pp_build_info sample missing"
  | Some build ->
    Alcotest.(check bool) "quotes and backslashes escaped in labels" true
      (contains build "v1.0-\\\"quoted\\\"\\\\slash");
    Alcotest.(check bool) "newline escaped in labels" true
      (contains build "host\\nname")

(* -- trace analytics ------------------------------------------------------ *)

let test_trace_report_golden () =
  match Obs.Trace_stats.load "data/mini_trace.json" with
  | Error e -> Alcotest.failf "mini trace: %s" e
  | Ok report ->
    Alcotest.(check bool) "straggler detected" true
      (List.exists
         (fun g -> g.Obs.Trace_stats.g_straggler)
         report.Obs.Trace_stats.chunk_groups);
    let expected =
      In_channel.with_open_text "data/mini_trace_report.md"
        In_channel.input_all
    in
    Alcotest.(check string) "ppreport trace markdown matches the golden file"
      expected
      (Obs.Trace_stats.to_markdown report)

let test_trace_report_json_schema () =
  match Obs.Trace_stats.load "data/mini_trace.json" with
  | Error e -> Alcotest.failf "mini trace: %s" e
  | Ok report ->
    (match Obs.Trace_stats.to_json report with
     | Obs.Json.Obj fields ->
       Alcotest.(check bool) "schema tag" true
         (List.assoc_opt "schema" fields
          = Some (Obs.Json.String "pptrace-report/v1"));
       (* busy time must equal the self-time sum for a parent-linked
          trace (the acceptance criterion behind `ppreport trace`) *)
       let f name =
         match List.assoc_opt name fields with
         | Some (Obs.Json.Float x) -> x
         | _ -> Alcotest.failf "missing float field %s" name
       in
       let busy = f "busy_s" and self_sum = f "self_sum_s" in
       Alcotest.(check bool) "self times sum to busy time (within 2%)" true
         (Float.abs (busy -. self_sum) <= 0.02 *. busy)
     | _ -> Alcotest.fail "report is not a JSON object")

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          concurrent_counter_prop;
          Alcotest.test_case "disabled mutations are no-ops" `Quick
            test_disabled_mutations_are_noops;
          Alcotest.test_case "registration is idempotent" `Quick
            test_registration_is_idempotent;
          Alcotest.test_case "diff drops quiet metrics" `Quick
            test_diff_drops_quiet_metrics;
          Alcotest.test_case "merge inverts diff" `Quick
            test_merge_inverts_diff;
          Alcotest.test_case "merge adds counters, replaces gauges" `Quick
            test_merge_new_and_mismatched;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "snapshot publishes GC/RSS telemetry" `Quick
            test_snapshot_publishes_process_stats;
          Alcotest.test_case "histogram quantiles (known distribution)" `Quick
            test_histogram_quantiles;
          Alcotest.test_case "quantiles of ensemble.trial_steps" `Quick
            test_quantiles_of_trial_steps;
        ] );
      ( "json",
        [
          json_roundtrip_prop;
          snapshot_roundtrip_prop;
          Alcotest.test_case "committed BENCH_results.json round-trips" `Quick
            test_bench_results_roundtrip;
        ] );
      ( "trace",
        [
          span_nesting_prop;
          span_forest_prop;
          Alcotest.test_case "spans emit on exceptions" `Quick
            test_span_emits_on_exception;
          Alcotest.test_case "trace file is valid JSON" `Quick
            test_trace_file_is_valid_json;
        ] );
      ( "trace_stats",
        [
          Alcotest.test_case "markdown matches the golden report" `Quick
            test_trace_report_golden;
          Alcotest.test_case "JSON report schema and self-time closure" `Quick
            test_trace_report_json_schema;
        ] );
      ( "events",
        [
          Alcotest.test_case "JSONL format and correlation ids" `Quick
            test_events_format;
          Alcotest.test_case "budget and checkpoint events land" `Quick
            test_events_capture_budget_and_checkpoint;
          Alcotest.test_case "jobs-invariant modulo timestamps" `Slow
            test_events_jobs_invariant;
        ] );
      ( "profile",
        [
          Alcotest.test_case "folded stacks" `Quick test_profile_folded_output;
        ] );
      ( "progress",
        [
          Alcotest.test_case "throttling" `Quick test_progress_throttles;
          Alcotest.test_case "disabled is silent" `Quick
            test_progress_disabled_is_silent;
          Alcotest.test_case "auto mode respects the tty" `Quick
            test_progress_auto_respects_tty;
          Alcotest.test_case "redirected runs record progress events" `Quick
            test_progress_records_events_when_redirected;
        ] );
      ( "export",
        [
          Alcotest.test_case "prometheus exposition conformance" `Quick
            test_prometheus_conformance;
        ] );
      ( "budget",
        [
          Alcotest.test_case "Exceeded carries stats" `Quick
            test_budget_exceeded_carries_stats;
          Alcotest.test_case "deadlines" `Quick test_budget_deadline;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "JSON round-trip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "save/load round-trip" `Quick
            test_checkpoint_save_load;
          Alcotest.test_case "rejects garbage" `Quick
            test_checkpoint_rejects_garbage;
          Alcotest.test_case "writer flush" `Quick test_checkpoint_writer_flush;
        ] );
      ( "shutdown",
        [
          Alcotest.test_case "install is idempotent, graceful nests" `Quick
            test_shutdown_install_idempotent;
        ] );
      ("clock", [ Alcotest.test_case "monotone" `Quick test_clock_monotone ]);
      ( "determinism",
        [
          Alcotest.test_case "ensemble aggregates unchanged under metrics"
            `Quick test_metrics_do_not_perturb_ensemble;
        ] );
    ]
