(* The differential gate for the parallel verification paths: the
   backward fixpoint, the Hilbert completion and the lazy SCC
   exploration must be bit-for-bit indistinguishable from their
   sequential reference versions — same bases, same verdicts, same
   counters, same budget-exceeded payloads — for every jobs/chunk
   setting. Counters are the oracle: wall-clock is machine-dependent,
   the work done is not. *)

let prop name ?(count = 60) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let random_protocol ~d ~seed =
  Protocol_gen.generate
    ~config:{ Protocol_gen.default with Protocol_gen.num_states = d }
    ~seed ()

let corpus_dir () =
  let candidates =
    [ "../protocols"; "protocols"; "../../protocols"; "../../../protocols" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some d -> d
  | None -> Alcotest.fail "protocols/ corpus not found"

let load_corpus name =
  match Protocol_syntax.parse_file (Filename.concat (corpus_dir ()) name) with
  | Ok p -> Population.complete p
  | Error e -> Alcotest.failf "%s: %s" name e

(* The jobs x chunk matrix of the differential harness. jobs beyond the
   core count is deliberate: oversubscription must not change results
   either. *)
let jobs_matrix = [ 1; 2; 4; 8 ]
let chunk_matrix = [ 1; 16 ]

let counter_of snap name =
  match List.assoc_opt name snap with
  | Some (Obs.Metrics.Counter n) -> n
  | _ -> 0

let with_metrics f =
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled false) f

(* Counters attributed to a single call, isolated by snapshot diff. *)
let counters_during names f =
  let before = Obs.Metrics.snapshot () in
  let r = f () in
  let d = Obs.Metrics.diff ~before ~after:(Obs.Metrics.snapshot ()) in
  (r, List.map (fun n -> (n, counter_of d n)) names)

(* -- stable sets: parallel backward fixpoint ------------------------------ *)

let analyses_equal a b =
  Downset.equal a.Stable_sets.stable0 b.Stable_sets.stable0
  && Downset.equal a.Stable_sets.stable1 b.Stable_sets.stable1
  && Upset.equal a.Stable_sets.unstable0 b.Stable_sets.unstable0
  && Upset.equal a.Stable_sets.unstable1 b.Stable_sets.unstable1

let backward_counters = [ "backward.candidates"; "backward.added"; "backward.generations" ]

let test_backward_matrix () =
  with_metrics (fun () ->
      let protocols =
        List.map (fun f -> (f, load_corpus f))
          [ "flock8.pp"; "majority.pp"; "parity.pp"; "exists_pair.pp";
            "broken_flock.pp" ]
        @ [ ("flock-succinct-3", Flock.succinct 3);
            ("threshold-binary-5", Threshold.binary 5) ]
      in
      List.iter
        (fun (name, p) ->
          let reference, ref_counters =
            counters_during backward_counters (fun () -> Stable_sets.analyse p)
          in
          List.iter
            (fun jobs ->
              List.iter
                (fun chunk ->
                  let a, cs =
                    counters_during backward_counters (fun () ->
                        Stable_sets.analyse ~jobs ~chunk p)
                  in
                  if not (analyses_equal a reference) then
                    Alcotest.failf "%s: bases differ at jobs=%d chunk=%d" name
                      jobs chunk;
                  if cs <> ref_counters then
                    Alcotest.failf
                      "%s: work counters differ at jobs=%d chunk=%d" name jobs
                      chunk)
                chunk_matrix)
            jobs_matrix)
        protocols)

(* -- Hilbert bases: parallel completion rounds ---------------------------- *)

let hilbert_counters =
  [ "hilbert.candidates"; "hilbert.pruned_scalar"; "hilbert.pruned_dominated";
    "hilbert.pruned_duplicate" ]

let test_hilbert_matrix () =
  with_metrics (fun () ->
      let corpus =
        (* Potential.basis needs leaderless single-input protocols *)
        List.filter
          (fun (_, p) ->
            Population.is_leaderless p
            && Array.length p.Population.input_vars = 1)
          (List.map (fun f -> (f, load_corpus f))
             [ "flock8.pp"; "majority.pp"; "parity.pp"; "exists_pair.pp";
               "broken_flock.pp" ])
      in
      let protocols =
        corpus
        @ [ ("flock-succinct-2", Flock.succinct 2);
            ("flock-succinct-3", Flock.succinct 3);
            ("threshold-unary-4", Threshold.unary 4);
            ("mod-3-1", Modulo_protocol.protocol ~m:3 ~r:1) ]
      in
      List.iter
        (fun (name, p) ->
          let reference, ref_counters =
            counters_during hilbert_counters (fun () -> Potential.basis p)
          in
          List.iter
            (fun jobs ->
              List.iter
                (fun chunk ->
                  let b, cs =
                    counters_during hilbert_counters (fun () ->
                        Potential.basis ~jobs ~chunk p)
                  in
                  if b <> reference then
                    Alcotest.failf "%s: basis differs at jobs=%d chunk=%d" name
                      jobs chunk;
                  if cs <> ref_counters then
                    Alcotest.failf
                      "%s: work counters differ at jobs=%d chunk=%d" name jobs
                      chunk)
                chunk_matrix)
            jobs_matrix)
        protocols)

(* -- lazy vs eager SCC exploration ---------------------------------------- *)

let verdict = Alcotest.testable Fair_semantics.pp_verdict ( = )

let test_lazy_vs_eager_corpus () =
  let checks =
    [ ("flock8.pp", [ 2; 7; 8; 9 ]); ("majority.pp", [ 2; 3 ]);
      ("parity.pp", [ 2; 3; 4 ]) ]
  in
  List.iter
    (fun (file, inputs) ->
      let p = load_corpus file in
      List.iter
        (fun i ->
          let v =
            match Array.length p.Population.input_vars with
            | 1 -> [| i |]
            | k -> Array.make k i
          in
          let eager = Fair_semantics.decide ~incremental:false p v in
          List.iter
            (fun (packed, incremental) ->
              Alcotest.check verdict
                (Printf.sprintf "%s input %d packed=%b incremental=%b" file i
                   packed incremental)
                eager
                (Fair_semantics.decide ~packed ~incremental p v))
            [ (true, true); (false, true); (false, false) ])
        inputs)
    checks

let test_lazy_stops_early () =
  (* A consensus-free bottom SCC lets the lazy path abandon the
     exploration, so it must intern strictly fewer configurations than
     the eager path. The "mixer" protocol reaches absorbing
     configurations populating both an accepting and a rejecting state,
     and its graph branches, so the first such sink the DFS pops prunes
     whole sibling subtrees. *)
  with_metrics (fun () ->
      let p =
        Population.complete
          (Population.make ~name:"mixer" ~states:[| "a"; "b"; "c" |]
             ~transitions:[ (0, 0, 1, 2); (0, 1, 1, 1) ]
             ~inputs:[ ("x", 0) ]
             ~output:[| false; true; false |] ())
      in
      let v = [| 10 |] in
      let count incremental =
        let verdict, cs =
          counters_during [ "configgraph.configs" ] (fun () ->
              Fair_semantics.decide ~incremental p v)
        in
        (verdict, List.assoc "configgraph.configs" cs)
      in
      let ve, eager = count false in
      let vl, lazy_ = count true in
      Alcotest.check verdict "mixer verdict" Fair_semantics.No_consensus ve;
      Alcotest.check verdict "lazy verdict agrees" ve vl;
      if lazy_ >= eager then
        Alcotest.failf
          "lazy path explored %d configs, eager %d: no early stop" lazy_ eager)

(* -- property tests ------------------------------------------------------- *)

let stable_base_minimal_prop =
  prop "stable-set bases are minimal antichains, identical in parallel"
    ~count:20 QCheck.(int_bound 10_000)
    (fun seed ->
      let p = random_protocol ~d:3 ~seed in
      let a = Stable_sets.analyse p in
      let antichain ds =
        let els = Downset.max_elements ds in
        List.for_all
          (fun x ->
            List.for_all
              (fun y -> x == y || not (Omega_vec.leq x y))
              els)
          els
      in
      antichain a.Stable_sets.stable0
      && antichain a.Stable_sets.stable1
      && analyses_equal a (Stable_sets.analyse ~jobs:3 ~chunk:1 p))

let stable_closed_under_steps_prop =
  prop "b-stable configurations have output b and only b-stable successors"
    ~count:20
    QCheck.(pair (int_bound 10_000) (int_bound 5))
    (fun (seed, i) ->
      let p = random_protocol ~d:3 ~seed in
      let a = Stable_sets.analyse p in
      let c = Population.initial_config p [| i + 2 |] in
      List.for_all
        (fun b ->
          (not (Stable_sets.is_stable a b c))
          || (Population.output_of_config p c = Some b
              && List.for_all
                   (fun c' -> Stable_sets.is_stable a b c')
                   (Population.distinct_successors p c)))
        [ false; true ])

let hilbert_minimal_prop =
  prop "parallel Hilbert bases verify as pointwise-minimal" ~count:15
    QCheck.(int_bound 10_000)
    (fun seed ->
      let p = random_protocol ~d:3 ~seed in
      let sys = Potential.system p in
      match Potential.basis ~jobs:2 ~max_candidates:200_000 p with
      | basis -> Hilbert_basis.verify_minimal sys ~eq:false basis
      | exception Obs.Budget.Exceeded _ -> true)

let eta_invariance_prop =
  prop "eta verdicts invariant under packed/lazy/stable-set settings"
    ~count:15 QCheck.(int_bound 10_000)
    (fun seed ->
      let p = random_protocol ~d:3 ~seed in
      Stable_sets.memo_clear ();
      match Eta_search.find p ~max_configs:60_000 ~max_input:6 with
      | reference ->
        List.for_all
          (fun (packed, stable) ->
            match
              Eta_search.find ~packed ~stable ~jobs:2 p ~max_configs:60_000
                ~max_input:6
            with
            | r -> r = reference
            | exception Configgraph.Too_many_configs _ -> false)
          [ (false, `Off); (true, `Memo); (true, `Per_input) ]
      | exception Configgraph.Too_many_configs _ -> true)

(* -- budget and fault behaviour ------------------------------------------- *)

let test_partial_basis_deterministic () =
  (* A budget trip in the middle of a parallel completion must join all
     domains (the call returns rather than hanging) and carry the same
     partial basis and the same consumed counts as the sequential
     trip. *)
  let p = Flock.succinct 3 in
  let trip jobs =
    match Potential.basis ~jobs ~max_candidates:40 p with
    | _ -> Alcotest.fail "expected the candidate budget to trip"
    | exception Obs.Budget.Exceeded info ->
      (match info.Obs.Budget.partial with
       | Hilbert_basis.Partial_basis partial ->
         (partial, info.Obs.Budget.consumed)
       | _ -> Alcotest.fail "expected Partial_basis in the budget exception")
  in
  let reference = trip 1 in
  List.iter
    (fun jobs ->
      let partial, consumed = trip jobs in
      let ref_partial, ref_consumed = reference in
      if partial <> ref_partial then
        Alcotest.failf "partial basis differs at jobs=%d" jobs;
      if consumed <> ref_consumed then
        Alcotest.failf "consumed counts differ at jobs=%d" jobs)
    [ 2; 4 ];
  (* the pool is reusable after the fault: a fresh parallel solve on
     the same protocol still matches the sequential one *)
  Alcotest.(check bool) "parallel solve works after a budget fault" true
    (Potential.basis ~jobs:4 p = Potential.basis p)

let test_partial_clover_deterministic () =
  let p = load_corpus "flock8.pp" in
  let c0 = Population.initial_config p [| 12 |] in
  let trip () =
    match Karp_miller.clover ~max_nodes:10 p c0 with
    | _ -> Alcotest.fail "expected the node budget to trip"
    | exception Obs.Budget.Exceeded info ->
      (match info.Obs.Budget.partial with
       | Karp_miller.Partial_clover vs -> vs
       | _ -> Alcotest.fail "expected Partial_clover in the budget exception")
  in
  let a = trip () and b = trip () in
  Alcotest.(check int) "same partial clover size" (List.length a)
    (List.length b);
  if not (List.for_all2 Omega_vec.equal a b) then
    Alcotest.fail "partial clover differs between identical runs"

(* -- memoized stable sets across the eta sweep ---------------------------- *)

let test_memo_sweep_saves_work () =
  with_metrics (fun () ->
      let p = Flock.succinct 3 in
      let sweep stable =
        Stable_sets.memo_clear ();
        counters_during
          [ "backward.candidates"; "eta_search.stable_hits";
            "stable_sets.memo_hits" ]
          (fun () -> Eta_search.find ~stable p ~max_input:10)
      in
      let eta_per, per = sweep `Per_input in
      let eta_memo, memo = sweep `Memo in
      if eta_per <> eta_memo then
        Alcotest.fail "memoized sweep changed the threshold result";
      (match eta_per with
       | Eta_search.Eta 8 -> ()
       | r -> Alcotest.failf "flock-succinct-3: %a" Eta_search.pp_result r);
      let get l n = List.assoc n l in
      Alcotest.(check bool) "shortcut fires" true
        (get memo "eta_search.stable_hits" > 0);
      Alcotest.(check bool) "memo cache hits" true
        (get memo "stable_sets.memo_hits" > 0);
      if get memo "backward.candidates" >= get per "backward.candidates" then
        Alcotest.failf
          "memoized sweep did %d backward candidates, per-input only %d"
          (get memo "backward.candidates")
          (get per "backward.candidates"))

let test_memo_hit_correctness () =
  with_metrics (fun () ->
      Stable_sets.memo_clear ();
      let p = Flock.succinct 2 in
      let a = Stable_sets.analyse_memo p in
      let b, cs =
        counters_during [ "stable_sets.memo_hits" ] (fun () ->
            Stable_sets.analyse_memo p)
      in
      Alcotest.(check int) "second call is a cache hit" 1
        (List.assoc "stable_sets.memo_hits" cs);
      Alcotest.(check bool) "hit returns the same analysis" true
        (analyses_equal a b);
      (* the fingerprint is structural: a renamed copy still hits *)
      let renamed = Population.rename p "renamed" in
      let c, cs' =
        counters_during [ "stable_sets.memo_hits" ] (fun () ->
            Stable_sets.analyse_memo renamed)
      in
      Alcotest.(check int) "rename still hits" 1
        (List.assoc "stable_sets.memo_hits" cs');
      Alcotest.(check bool) "renamed analysis equal" true (analyses_equal a c))

let () =
  Alcotest.run "parallel_verify"
    [
      ( "backward",
        [ Alcotest.test_case "jobs x chunk matrix: identical bases and counters"
            `Quick test_backward_matrix ] );
      ( "hilbert",
        [ Alcotest.test_case "jobs x chunk matrix: identical bases and counters"
            `Quick test_hilbert_matrix ] );
      ( "lazy_scc",
        [ Alcotest.test_case "lazy = eager = packed verdicts on the corpus"
            `Quick test_lazy_vs_eager_corpus;
          Alcotest.test_case "lazy path stops before the full graph" `Quick
            test_lazy_stops_early ] );
      ( "properties",
        [ stable_base_minimal_prop; stable_closed_under_steps_prop;
          hilbert_minimal_prop; eta_invariance_prop ] );
      ( "budget",
        [ Alcotest.test_case "Partial_basis identical for any jobs" `Quick
            test_partial_basis_deterministic;
          Alcotest.test_case "Partial_clover deterministic" `Quick
            test_partial_clover_deterministic ] );
      ( "memo",
        [ Alcotest.test_case "memoized eta sweep does strictly less work"
            `Quick test_memo_sweep_saves_work;
          Alcotest.test_case "memo hits return the cached analysis" `Quick
            test_memo_hit_correctness ] );
    ]
