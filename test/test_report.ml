(* The run-ledger and regression layer: qcheck round-trips for history
   records, ledger append/load, medians, the golden ppreport-diff
   rendering, the regression gate's exact-counter oracle (a counter
   perturbed by 1 must fail, named by section and metric), and the
   atomic JSON + Prometheus export. *)

let prop name ?(count = 100) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* -- generators ----------------------------------------------------------- *)

let ident_gen =
  QCheck.Gen.(
    map
      (fun (c, rest) -> String.make 1 c ^ rest)
      (pair (char_range 'a' 'z')
         (string_size ~gen:(char_range 'a' 'z') (int_bound 8))))

let finite_float_gen = QCheck.Gen.float_range (-1e9) 1e9

let v_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> Obs.Metrics.Counter n) (int_range 0 1_000_000);
        map (fun f -> Obs.Metrics.Gauge f) finite_float_gen;
        map
          (fun (counts, sum) ->
            let counts = Array.of_list counts in
            let count = Array.fold_left ( + ) 0 counts in
            Obs.Metrics.Histogram
              { bounds = [| 1.0; 10.0; 100.0 |]; counts; sum; count })
          (pair
             (list_repeat 4 (int_range 0 1000))
             (float_range 0.0 1e9));
      ])

let metrics_gen =
  QCheck.Gen.(
    map
      (fun pairs ->
        (* unique sorted names, as Metrics.snapshot produces *)
        List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) pairs)
      (list_size (int_bound 5) (pair ident_gen v_gen)))

let section_gen =
  QCheck.Gen.(
    map
      (fun (wall_s, metrics) -> { Obs.History.wall_s; metrics })
      (pair (float_range 0.0 1e4) metrics_gen))

let meta_gen =
  QCheck.Gen.(
    map
      (fun ((git_rev, hostname), (ocaml_version, jobs)) ->
        {
          Obs.Run_meta.git_rev;
          hostname;
          ocaml_version;
          jobs;
          timestamp = "2026-08-05T12:00:00Z";
        })
      (pair (pair ident_gen ident_gen) (pair ident_gen (int_range 1 64))))

let run_gen =
  QCheck.Gen.(
    map
      (fun ((meta, sections), timings) ->
        let dedup_by_fst l =
          List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) l
        in
        {
          Obs.History.meta;
          sections = dedup_by_fst sections;
          timings = dedup_by_fst timings;
        })
      (pair
         (pair (option meta_gen) (list_size (int_bound 4) (pair ident_gen section_gen)))
         (list_size (int_bound 3) (pair ident_gen (float_range 0.0 1e9)))))

let run_arb =
  QCheck.make
    ~print:(fun r -> Obs.Json.to_string (Obs.History.run_to_json r))
    run_gen

(* -- history record round-trips ------------------------------------------- *)

let run_roundtrip_prop =
  prop "History.run_of_json inverts run_to_json" ~count:200 run_arb (fun r ->
      Obs.History.run_of_json (Obs.History.run_to_json r) = Ok r)

let run_bytes_stable_prop =
  prop "run JSON re-serialises byte-stably" ~count:200 run_arb (fun r ->
      let s = Obs.Json.to_string (Obs.History.run_to_json r) in
      match Obs.History.parse_run s with
      | Error _ -> false
      | Ok r' -> Obs.Json.to_string (Obs.History.run_to_json r') = s)

let meta_roundtrip_prop =
  prop "Run_meta.of_json inverts to_json" ~count:200 (QCheck.make meta_gen)
    (fun m -> Obs.Run_meta.of_json (Obs.Run_meta.to_json m) = Ok m)

let test_run_meta_collect () =
  let m = Obs.Run_meta.collect ~jobs:3 () in
  Alcotest.(check int) "jobs" 3 m.Obs.Run_meta.jobs;
  Alcotest.(check string) "ocaml version" Sys.ocaml_version
    m.Obs.Run_meta.ocaml_version;
  (* this test runs inside the repo checkout: HEAD must resolve *)
  Alcotest.(check bool) "git rev resolved" true
    (String.length m.Obs.Run_meta.git_rev = 40
     && m.Obs.Run_meta.git_rev <> "unknown");
  Alcotest.(check bool) "timestamp is ISO-8601 UTC" true
    (String.length m.Obs.Run_meta.timestamp = 20
     && m.Obs.Run_meta.timestamp.[19] = 'Z')

(* -- ledger --------------------------------------------------------------- *)

let temp_dir () =
  let path = Filename.temp_file "ppledger" "" in
  Sys.remove path;
  path

let ledger_roundtrip_prop =
  prop "ledger append/load round-trips run lists" ~count:20
    (QCheck.make QCheck.Gen.(list_size (int_range 1 5) run_gen))
    (fun runs ->
      let dir = temp_dir () in
      Fun.protect ~finally:(fun () ->
          (try Sys.remove (Obs.History.ledger_file dir) with Sys_error _ -> ());
          try Unix.rmdir dir with Unix.Unix_error _ -> ())
      @@ fun () ->
      List.iter (fun r -> Obs.History.append ~dir r) runs;
      Obs.History.load_ledger dir = Ok (runs, 0))

(* a crash mid-append leaves a truncated/garbage tail line; the good
   runs around it must stay readable, with the bad lines counted *)
let test_ledger_bad_line () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () ->
      (try Sys.remove (Obs.History.ledger_file dir) with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
  @@ fun () ->
  let a = { Obs.History.meta = None; sections = []; timings = [] } in
  let b =
    { Obs.History.meta = None; sections = []; timings = [ ("t", 1.0) ] }
  in
  Obs.History.append ~dir a;
  let oc =
    Out_channel.open_gen
      [ Open_append; Open_text ] 0o644 (Obs.History.ledger_file dir)
  in
  (* a valid line truncated mid-object, then plain garbage *)
  Out_channel.output_string oc "{\"schema\": \"ppbench/v2\", \"sect\n";
  Out_channel.output_string oc "not json\n";
  Out_channel.close oc;
  Obs.History.append ~dir b;
  match Obs.History.load_ledger dir with
  | Error e -> Alcotest.fail e
  | Ok (runs, skipped) ->
    Alcotest.(check int) "both good runs survive" 2 (List.length runs);
    Alcotest.(check bool) "order preserved" true (runs = [ a; b ]);
    Alcotest.(check int) "bad lines counted" 2 skipped

(* -- medians -------------------------------------------------------------- *)

let section_with ~wall counter =
  {
    Obs.History.wall_s = wall;
    metrics = [ ("core.ops", Obs.Metrics.Counter counter) ];
  }

let run_with ~wall counter =
  {
    Obs.History.meta = None;
    sections = [ ("E1", section_with ~wall counter) ];
    timings = [];
  }

let test_median_run () =
  let runs = [ run_with ~wall:1.0 5; run_with ~wall:9.0 5; run_with ~wall:2.0 7 ] in
  match Obs.History.median_run runs with
  | Error e -> Alcotest.fail e
  | Ok m ->
    let s = List.assoc "E1" m.Obs.History.sections in
    Alcotest.(check (float 1e-9)) "lower-median wall" 2.0 s.Obs.History.wall_s;
    (match List.assoc "core.ops" s.Obs.History.metrics with
     | Obs.Metrics.Counter 5 -> ()
     | _ -> Alcotest.fail "counter median should be 5 (an observed value)")

let test_sparkline () =
  Alcotest.(check string) "ramp" "▁▃▅█"
    (Obs.History.sparkline [ 0.0; 1.0; 2.0; 3.5 ]);
  Alcotest.(check string) "constant" "▄▄▄"
    (Obs.History.sparkline [ 2.0; 2.0; 2.0 ]);
  Alcotest.(check string) "empty" "" (Obs.History.sparkline [])

(* -- the golden diff ------------------------------------------------------ *)

let golden_baseline =
  {
    Obs.History.meta = None;
    sections =
      [
        ( "E1",
          {
            Obs.History.wall_s = 1.0;
            metrics =
              [
                ("alpha.count", Obs.Metrics.Counter 10);
                ("beta.level", Obs.Metrics.Gauge 2.0);
              ];
          } );
        ("E2", { Obs.History.wall_s = 0.5; metrics = [] });
      ];
    timings = [];
  }

let golden_candidate =
  {
    Obs.History.meta = None;
    sections =
      [
        ( "E1",
          {
            Obs.History.wall_s = 1.5;
            metrics =
              [
                ("alpha.count", Obs.Metrics.Counter 12);
                ("beta.level", Obs.Metrics.Gauge 2.0);
              ];
          } );
        ("E2", { Obs.History.wall_s = 0.5; metrics = [] });
      ];
    timings = [];
  }

let test_golden_diff () =
  let expected =
    "== E1 ==\n\
    \  wall_s  1 -> 1.5  (+50.0%)\n\
    \  alpha.count  10 -> 12  (+2)\n\
     == E2 ==\n\
    \  wall_s  0.5 -> 0.5  (+0.0%)\n\
    \  (no metric drift)\n"
  in
  Alcotest.(check string) "ppreport diff rendering" expected
    (Obs.Regress.render_diff ~baseline:golden_baseline
       ~candidate:golden_candidate)

(* -- the regression gate -------------------------------------------------- *)

let test_check_passes_on_identical () =
  let v =
    Obs.Regress.check ~baseline:golden_baseline ~candidate:golden_baseline ()
  in
  Alcotest.(check bool) "no failure" false (Obs.Regress.failed v);
  Alcotest.(check int) "sections" 2 v.Obs.Regress.sections_checked

let test_check_fails_on_perturbed_counter () =
  (* the negative test the gate exists for: one deterministic counter
     off by 1 must fail, and the finding must name section and metric *)
  let perturbed =
    {
      golden_baseline with
      Obs.History.sections =
        List.map
          (fun (id, s) ->
            if id <> "E1" then (id, s)
            else
              ( id,
                {
                  s with
                  Obs.History.metrics =
                    List.map
                      (fun (name, v) ->
                        match v with
                        | Obs.Metrics.Counter n when name = "alpha.count" ->
                          (name, Obs.Metrics.Counter (n + 1))
                        | _ -> (name, v))
                      s.Obs.History.metrics;
                } ))
          golden_baseline.Obs.History.sections;
    }
  in
  let v =
    Obs.Regress.check ~baseline:golden_baseline ~candidate:perturbed ()
  in
  Alcotest.(check bool) "gate failed" true (Obs.Regress.failed v);
  let f =
    List.find
      (fun f -> f.Obs.Regress.severity = Obs.Regress.Fail)
      v.Obs.Regress.findings
  in
  Alcotest.(check string) "names the section" "E1" f.Obs.Regress.section;
  Alcotest.(check string) "names the counter" "alpha.count" f.Obs.Regress.metric;
  (* and the rendered verdict carries both, for the CI log *)
  let text = Obs.Regress.render_verdict v in
  Alcotest.(check bool) "rendered" true
    (let has_infix ~infix s =
       let n = String.length s and m = String.length infix in
       let rec go i = i + m <= n && (String.sub s i m = infix || go (i + 1)) in
       go 0
     in
     has_infix ~infix:"FAIL E1 alpha.count" text)

let test_check_tolerates_wall_noise () =
  let noisy =
    {
      golden_baseline with
      Obs.History.sections =
        List.map
          (fun (id, s) -> (id, { s with Obs.History.wall_s = s.Obs.History.wall_s *. 1.4 }))
          golden_baseline.Obs.History.sections;
    }
  in
  let v = Obs.Regress.check ~baseline:golden_baseline ~candidate:noisy () in
  Alcotest.(check bool) "40% wall drift passes the default tolerance" false
    (Obs.Regress.failed v);
  let crawl =
    {
      golden_baseline with
      Obs.History.sections =
        [ ("E1", { (List.assoc "E1" golden_baseline.Obs.History.sections) with Obs.History.wall_s = 30.0 }) ];
    }
  in
  let v = Obs.Regress.check ~baseline:golden_baseline ~candidate:crawl () in
  Alcotest.(check bool) "30x wall drift fails" true (Obs.Regress.failed v)

let test_check_ignores_environment_metrics () =
  let with_gc gc =
    {
      Obs.History.meta = None;
      sections =
        [
          ( "E1",
            {
              Obs.History.wall_s = 1.0;
              metrics =
                [
                  ("core.ops", Obs.Metrics.Counter 5);
                  ("gc.heap_words", Obs.Metrics.Gauge gc);
                ];
            } );
        ];
      timings = [];
    }
  in
  let v =
    Obs.Regress.check ~baseline:(with_gc 1e6) ~candidate:(with_gc 1e9) ()
  in
  Alcotest.(check bool) "gc.* skipped by default" false (Obs.Regress.failed v)

let test_check_missing_section () =
  let config =
    { Obs.Regress.default_config with Obs.Regress.sections = Some [ "E1"; "EX" ] }
  in
  let v =
    Obs.Regress.check ~config ~baseline:golden_baseline
      ~candidate:golden_baseline ()
  in
  Alcotest.(check bool) "requested section missing fails" true
    (Obs.Regress.failed v)

(* -- export --------------------------------------------------------------- *)

let test_export_write_now () =
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled false) @@ fun () ->
  let c = Obs.Metrics.counter "test.export_ticks" in
  Obs.Metrics.add c 3;
  let h = Obs.Metrics.histogram "test.export_sizes" ~bounds:[| 1.0; 10.0 |] in
  Obs.Metrics.observe h 5.0;
  let path = Filename.temp_file "ppmetrics" ".json" in
  let prom = Obs.Export.prom_path path in
  Fun.protect ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ path; prom ])
  @@ fun () ->
  Alcotest.(check string) "prom sibling path" (Filename.chop_suffix path ".json" ^ ".prom") prom;
  let meta = Obs.Run_meta.collect ~jobs:2 () in
  Obs.Export.write_now ~meta ~t0:(Obs.Clock.now_ns ()) ~path ();
  Alcotest.(check bool) "no tmp litter" false (Sys.file_exists (path ^ ".tmp"));
  (match Obs.Json.parse (In_channel.with_open_text path In_channel.input_all) with
   | Ok (Obs.Json.Obj fields) ->
     Alcotest.(check bool) "schema" true
       (List.assoc_opt "schema" fields = Some (Obs.Json.String "ppmetrics/v1"));
     Alcotest.(check bool) "has meta" true (List.mem_assoc "meta" fields);
     (match List.assoc_opt "metrics" fields with
      | Some m ->
        (match Obs.Metrics.of_json_value m with
         | Ok snap ->
           Alcotest.(check bool) "exported counter present" true
             (List.assoc_opt "test.export_ticks" snap
              = Some (Obs.Metrics.Counter 3))
         | Error e -> Alcotest.failf "metrics do not parse: %s" e)
      | None -> Alcotest.fail "no metrics field")
   | Ok _ -> Alcotest.fail "snapshot is not an object"
   | Error e -> Alcotest.failf "snapshot does not parse: %s" e);
  let prom_text = In_channel.with_open_text prom In_channel.input_all in
  let has_infix ~infix s =
    let n = String.length s and m = String.length infix in
    let rec go i = i + m <= n && (String.sub s i m = infix || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "prometheus counter line" true
    (has_infix ~infix:"pp_test_export_ticks 3" prom_text);
  Alcotest.(check bool) "prometheus build info" true
    (has_infix ~infix:"pp_build_info{" prom_text);
  Alcotest.(check bool) "histogram +Inf bucket" true
    (has_infix ~infix:"pp_test_export_sizes_bucket{le=\"+Inf\"} 1" prom_text);
  Alcotest.(check bool) "histogram buckets are cumulative" true
    (has_infix ~infix:"pp_test_export_sizes_bucket{le=\"10\"} 1" prom_text)

let test_export_fleet () =
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Export.set_fleet None;
      Obs.Export.set_identity [])
  @@ fun () ->
  let row =
    {
      Obs.Export.fw_worker = "fork0-123";
      fw_host = "node-a";
      fw_pid = 123;
      fw_last_seen_s = 0.5;
      fw_offset_s = 0.001;
      fw_chunks_done = 7;
      fw_leased = 2;
      fw_events = 40;
      fw_metrics =
        [
          ("bb.codes_scanned", Obs.Metrics.Counter 1000);
          ( "ensemble.trial_steps",
            Obs.Metrics.Histogram
              { bounds = [| 1.0 |]; counts = [| 2; 1 |]; sum = 4.0; count = 3 } );
        ];
    }
  in
  Obs.Export.set_identity [ ("role", "coordinator") ];
  Obs.Export.set_fleet (Some (fun () -> [ row ]));
  let path = Filename.temp_file "ppmetrics" ".json" in
  let prom = Obs.Export.prom_path path in
  Fun.protect ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ path; prom ])
  @@ fun () ->
  Obs.Export.write_now ~t0:(Obs.Clock.now_ns ()) ~path ();
  (match Obs.Json.parse (In_channel.with_open_text path In_channel.input_all) with
   | Ok (Obs.Json.Obj fields) ->
     Alcotest.(check bool) "fleet snapshots are ppmetrics/v2" true
       (List.assoc_opt "schema" fields = Some (Obs.Json.String "ppmetrics/v2"));
     (match List.assoc_opt "workers" fields with
      | Some (Obs.Json.List [ Obs.Json.Obj w ]) ->
        Alcotest.(check bool) "worker name" true
          (List.assoc_opt "worker" w = Some (Obs.Json.String "fork0-123"));
        Alcotest.(check bool) "chunk count" true
          (List.assoc_opt "chunks_done" w = Some (Obs.Json.Int 7));
        Alcotest.(check bool) "per-worker metrics round-trip" true
          (match List.assoc_opt "metrics" w with
           | Some m ->
             (match Obs.Metrics.of_json_value m with
              | Ok snap ->
                List.assoc_opt "bb.codes_scanned" snap
                = Some (Obs.Metrics.Counter 1000)
              | Error _ -> false)
           | None -> false)
      | _ -> Alcotest.fail "expected a one-row workers section")
   | Ok _ -> Alcotest.fail "snapshot is not an object"
   | Error e -> Alcotest.failf "snapshot does not parse: %s" e);
  let prom_text = In_channel.with_open_text prom In_channel.input_all in
  let has_infix ~infix s =
    let n = String.length s and m = String.length infix in
    let rec go i = i + m <= n && (String.sub s i m = infix || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "build info carries identity labels" true
    (has_infix ~infix:"role=\"coordinator\"" prom_text);
  Alcotest.(check bool) "fleet worker info series" true
    (has_infix
       ~infix:
         "pp_fleet_worker_info{worker=\"fork0-123\",host=\"node-a\",pid=\"123\"} 1"
       prom_text);
  Alcotest.(check bool) "fleet chunk counter" true
    (has_infix ~infix:"pp_fleet_chunks_done{worker=\"fork0-123\"" prom_text);
  Alcotest.(check bool) "per-worker metric family" true
    (has_infix
       ~infix:"pp_worker_bb_codes_scanned{worker=\"fork0-123\",host=\"node-a\"} 1000"
       prom_text);
  Alcotest.(check bool) "per-worker histogram buckets carry labels" true
    (has_infix
       ~infix:
         "pp_worker_ensemble_trial_steps_bucket{worker=\"fork0-123\",host=\"node-a\",le=\"+Inf\"} 3"
       prom_text);
  (* and with the provider removed the schema drops back to v1 *)
  Obs.Export.set_fleet None;
  Obs.Export.write_now ~t0:(Obs.Clock.now_ns ()) ~path ();
  match Obs.Json.parse (In_channel.with_open_text path In_channel.input_all) with
  | Ok (Obs.Json.Obj fields) ->
    Alcotest.(check bool) "back to ppmetrics/v1" true
      (List.assoc_opt "schema" fields = Some (Obs.Json.String "ppmetrics/v1"))
  | _ -> Alcotest.fail "second snapshot does not parse"

let test_export_periodic () =
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled false) @@ fun () ->
  let path = Filename.temp_file "ppmetrics" ".json" in
  let prom = Obs.Export.prom_path path in
  Fun.protect ~finally:(fun () ->
      Obs.Export.stop ();
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ path; prom ])
  @@ fun () ->
  let c = Obs.Metrics.counter "test.export_live" in
  Obs.Export.start ~every_s:0.05 ~path ();
  Alcotest.(check bool) "exporter active" true (Obs.Export.active ());
  Obs.Metrics.add c 41;
  Unix.sleepf 0.25;
  Obs.Export.stop ();
  Alcotest.(check bool) "exporter stopped" false (Obs.Export.active ());
  match Obs.Json.parse (In_channel.with_open_text path In_channel.input_all) with
  | Ok (Obs.Json.Obj fields) ->
    (match List.assoc_opt "metrics" fields with
     | Some m ->
       (match Obs.Metrics.of_json_value m with
        | Ok snap ->
          Alcotest.(check bool) "final snapshot carries the live counter" true
            (match List.assoc_opt "test.export_live" snap with
             | Some (Obs.Metrics.Counter n) -> n >= 41
             | _ -> false)
        | Error e -> Alcotest.failf "metrics do not parse: %s" e)
     | None -> Alcotest.fail "no metrics field")
  | Ok _ -> Alcotest.fail "snapshot is not an object"
  | Error e -> Alcotest.failf "snapshot does not parse: %s" e

let () =
  Alcotest.run "report"
    [
      ( "records",
        [
          run_roundtrip_prop;
          run_bytes_stable_prop;
          meta_roundtrip_prop;
          Alcotest.test_case "Run_meta.collect" `Quick test_run_meta_collect;
        ] );
      ( "ledger",
        [
          ledger_roundtrip_prop;
          Alcotest.test_case "malformed line is an error" `Quick
            test_ledger_bad_line;
          Alcotest.test_case "median run" `Quick test_median_run;
          Alcotest.test_case "sparkline" `Quick test_sparkline;
        ] );
      ( "diff",
        [ Alcotest.test_case "golden ppreport diff" `Quick test_golden_diff ] );
      ( "check",
        [
          Alcotest.test_case "identical runs pass" `Quick
            test_check_passes_on_identical;
          Alcotest.test_case "counter perturbed by 1 fails, named" `Quick
            test_check_fails_on_perturbed_counter;
          Alcotest.test_case "wall noise tolerated, blowup fails" `Quick
            test_check_tolerates_wall_noise;
          Alcotest.test_case "environment metrics ignored" `Quick
            test_check_ignores_environment_metrics;
          Alcotest.test_case "requested section missing fails" `Quick
            test_check_missing_section;
        ] );
      ( "export",
        [
          Alcotest.test_case "atomic JSON + Prometheus write" `Quick
            test_export_write_now;
          Alcotest.test_case "fleet section: ppmetrics/v2 + labelled prom"
            `Quick test_export_fleet;
          Alcotest.test_case "periodic exporter" `Quick test_export_periodic;
        ] );
    ]
