(* Tests for the deterministic PRNG, the stochastic simulator, and the
   statistics helpers. The simulator's verdicts are cross-checked
   against the exact semantics. *)

let prop name ?(count = 100) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* -- Splitmix64 ----------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Splitmix64.create 7 and b = Splitmix64.create 7 in
  let xs = List.init 16 (fun _ -> Splitmix64.next a) in
  let ys = List.init 16 (fun _ -> Splitmix64.next b) in
  Alcotest.(check (list int64)) "same seed, same stream" xs ys

let test_prng_seed_matters () =
  let a = Splitmix64.create 1 and b = Splitmix64.create 2 in
  Alcotest.(check bool) "different streams" true
    (Splitmix64.next a <> Splitmix64.next b)

let test_prng_copy () =
  let a = Splitmix64.create 3 in
  ignore (Splitmix64.next a);
  let b = Splitmix64.copy a in
  Alcotest.(check int64) "copy preserves state" (Splitmix64.next a) (Splitmix64.next b)

(* fixed-vector regression: the exact first outputs of seed 42, pinned
   so the deterministic-seeding contract (and hence every recorded
   experiment) can never drift silently *)
let test_prng_pinned_vectors () =
  let expected =
    [
      0xbdd732262feb6e95L; 0x28efe333b266f103L; 0x47526757130f9f52L;
      0x581ce1ff0e4ae394L; 0x09bc585a244823f2L; 0xde4431fa3c80db06L;
      0x37e9671c45376d5dL; 0xccf635ee9e9e2fa4L;
    ]
  in
  let g = Splitmix64.create 42 in
  let got = List.init 8 (fun _ -> Splitmix64.next g) in
  Alcotest.(check (list int64)) "first 8 outputs of seed 42" expected got

let test_prng_split_independence () =
  let m = Splitmix64.create 42 in
  let s1 = Splitmix64.split m in
  let s2 = Splitmix64.split m in
  (* the two derived streams and the master's continuation are pinned
     and pairwise distinct *)
  Alcotest.(check int64) "first split" 0xf54abb1228262896L (Splitmix64.next s1);
  Alcotest.(check int64) "second split" 0xfc991bca1a1aa1aeL (Splitmix64.next s2);
  Alcotest.(check int64) "master continues its own stream" 0x47526757130f9f52L
    (Splitmix64.next m);
  (* advancing one stream must not disturb another *)
  let s3 = Splitmix64.split m in
  let probe = Splitmix64.copy s3 in
  for _ = 1 to 100 do ignore (Splitmix64.next s1) done;
  Alcotest.(check int64) "streams are isolated" (Splitmix64.next probe)
    (Splitmix64.next s3)

let prng_props =
  [
    prop "int_below in range" QCheck.(pair (int_range 1 1000) int) (fun (n, seed) ->
        let g = Splitmix64.create seed in
        let v = Splitmix64.int_below g n in
        0 <= v && v < n);
    prop "float_unit in range" QCheck.int (fun seed ->
        let g = Splitmix64.create seed in
        let v = Splitmix64.float_unit g in
        0.0 <= v && v < 1.0);
    prop "int_below roughly uniform" QCheck.(int_range 0 10_000) (fun seed ->
        (* over 3000 draws from {0,1,2}, each bucket within generous bounds *)
        let g = Splitmix64.create seed in
        let counts = Array.make 3 0 in
        for _ = 1 to 3000 do
          let v = Splitmix64.int_below g 3 in
          counts.(v) <- counts.(v) + 1
        done;
        Array.for_all (fun c -> c > 800 && c < 1200) counts);
  ]

(* -- Simulator ------------------------------------------------------------ *)

let test_sim_flock_accepts () =
  let rng = Splitmix64.create 42 in
  let p = Flock.succinct 3 in
  let r = Simulator.run_input ~rng p [| 20 |] in
  Alcotest.(check bool) "converged" true r.Simulator.converged;
  Alcotest.(check (option bool)) "accepts (20 >= 8)" (Some true) r.Simulator.output;
  Alcotest.(check int) "population preserved" 20 (Mset.size r.Simulator.final)

let test_sim_flock_rejects () =
  let rng = Splitmix64.create 42 in
  let p = Flock.succinct 3 in
  let r = Simulator.run_input ~rng p [| 5 |] in
  Alcotest.(check bool) "converged" true r.Simulator.converged;
  Alcotest.(check (option bool)) "rejects (5 < 8)" (Some false) r.Simulator.output

let test_sim_reproducible () =
  let p = Flock.succinct 2 in
  let r1 = Simulator.run_input ~rng:(Splitmix64.create 5) p [| 13 |] in
  let r2 = Simulator.run_input ~rng:(Splitmix64.create 5) p [| 13 |] in
  Alcotest.(check int) "same steps" r1.Simulator.steps r2.Simulator.steps;
  Alcotest.(check bool) "same final" true (Mset.equal r1.Simulator.final r2.Simulator.final)

let test_sim_small_population_rejected () =
  let p = Flock.succinct 2 in
  Alcotest.check_raises "size >= 2"
    (Invalid_argument "Simulator.run: population size >= 2 required") (fun () ->
      ignore
        (Simulator.run ~rng:(Splitmix64.create 1) p
           (Mset.of_list (Population.num_states p) [ (1, 1) ])))

let test_sim_parallel_time () =
  let r =
    Simulator.run_input ~rng:(Splitmix64.create 9) (Flock.succinct 2) [| 50 |]
  in
  let pt = Simulator.parallel_time r ~population:50 in
  Alcotest.(check bool) "positive and finite" true (pt >= 0.0 && pt < 1e6)

(* chi-square sanity: the scheduler draws unordered agent pairs
   uniformly. On counts [2; 2; 2] (6 agents, 30 ordered pairs) each
   same-state pair {i,i} has probability 2/30 and each cross pair {i,j}
   8/30; with 30000 draws the chi-square statistic over the 6 categories
   (5 degrees of freedom) stays below the p = 0.001 critical value 20.5
   unless the sampler is biased. Deterministic via the fixed seed. *)
let test_sample_pair_chi_square () =
  let rng = Splitmix64.create 2026 in
  let counts = [| 2; 2; 2 |] in
  let draws = 30_000 in
  let observed = Hashtbl.create 6 in
  for _ = 1 to draws do
    let s1, s2 = Simulator.sample_pair rng counts 6 in
    let key = if s1 <= s2 then (s1, s2) else (s2, s1) in
    Hashtbl.replace observed key
      (1 + Option.value ~default:0 (Hashtbl.find_opt observed key))
  done;
  Alcotest.(check bool) "counts untouched" true (counts = [| 2; 2; 2 |]);
  let chi2 = ref 0.0 in
  List.iter
    (fun (key, p) ->
      let expected = p *. float_of_int draws in
      let o = float_of_int (Option.value ~default:0 (Hashtbl.find_opt observed key)) in
      chi2 := !chi2 +. (((o -. expected) ** 2.0) /. expected))
    [
      ((0, 0), 2.0 /. 30.0); ((1, 1), 2.0 /. 30.0); ((2, 2), 2.0 /. 30.0);
      ((0, 1), 8.0 /. 30.0); ((0, 2), 8.0 /. 30.0); ((1, 2), 8.0 /. 30.0);
    ];
  if !chi2 > 20.5 then
    Alcotest.failf "pair sampling not uniform: chi-square %.2f > 20.5" !chi2

(* simulation agrees with the exact semantics on decided inputs *)
let sim_vs_exact_prop =
  prop "simulator verdict matches exact semantics" ~count:15
    QCheck.(pair (int_range 2 14) (int_range 0 1000))
    (fun (i, seed) ->
      let p = Threshold.binary 6 in
      match Fair_semantics.decide p [| i |] with
      | Fair_semantics.Decides expected ->
        let r = Simulator.run_input ~rng:(Splitmix64.create seed) p [| i |] in
        r.Simulator.converged && r.Simulator.output = Some expected
      | _ -> false)

let test_sample_parallel_times () =
  let rng = Splitmix64.create 2 in
  let ts = Simulator.sample_parallel_times ~runs:5 ~rng (Flock.succinct 3) [| 40 |] in
  Alcotest.(check int) "five runs" 5 (List.length ts);
  Alcotest.(check bool) "all nonnegative" true (List.for_all (fun t -> t >= 0.0) ts)

(* with leaders *)
let test_sim_with_leaders () =
  let p = Leader_counter.protocol 2 in
  let r = Simulator.run_input ~rng:(Splitmix64.create 11) p [| 10 |] in
  Alcotest.(check (option bool)) "10 >= 4 accepted" (Some true) r.Simulator.output

(* -- Gillespie ------------------------------------------------------------- *)

let test_gillespie_verdicts () =
  let rng = Splitmix64.create 17 in
  let p = Flock.succinct 3 in
  let accept = Gillespie.run_input ~rng p [| 20 |] in
  Alcotest.(check (option bool)) "accepts 20 >= 8" (Some true) accept.Gillespie.output;
  Alcotest.(check bool) "converged" true accept.Gillespie.converged;
  Alcotest.(check bool) "time advanced" true (accept.Gillespie.time > 0.0);
  let reject = Gillespie.run_input ~rng p [| 5 |] in
  Alcotest.(check (option bool)) "rejects 5 < 8" (Some false) reject.Gillespie.output

let test_gillespie_deterministic () =
  let p = Flock.succinct 2 in
  let r1 = Gillespie.run_input ~rng:(Splitmix64.create 4) p [| 15 |] in
  let r2 = Gillespie.run_input ~rng:(Splitmix64.create 4) p [| 15 |] in
  Alcotest.(check int) "same steps" r1.Gillespie.steps r2.Gillespie.steps;
  Alcotest.(check (float 1e-12)) "same time" r1.Gillespie.time r2.Gillespie.time

let test_gillespie_inert () =
  (* a protocol whose completed transitions are all identities is inert *)
  let p =
    Population.complete
      (Population.make ~name:"inert" ~states:[| "x" |] ~transitions:[]
         ~inputs:[ ("x", 0) ]
         ~output:[| true |] ())
  in
  let r = Gillespie.run_input ~rng:(Splitmix64.create 1) p [| 5 |] in
  Alcotest.(check int) "no reactions" 0 r.Gillespie.steps;
  Alcotest.(check bool) "converged (inert)" true r.Gillespie.converged;
  Alcotest.(check (option bool)) "consensus" (Some true) r.Gillespie.output

let test_gillespie_population_preserved () =
  let rng = Splitmix64.create 23 in
  let p = Threshold.binary 6 in
  let r = Gillespie.run_input ~rng p [| 17 |] in
  Alcotest.(check int) "size conserved" 17 (Mset.size r.Gillespie.final)

let gillespie_vs_exact_prop =
  prop "gillespie verdict matches exact semantics" ~count:12
    QCheck.(pair (int_range 2 12) (int_range 0 999))
    (fun (i, seed) ->
      let p = Threshold.binary 5 in
      match Fair_semantics.decide p [| i |] with
      | Fair_semantics.Decides expected ->
        let r = Gillespie.run_input ~rng:(Splitmix64.create seed) p [| i |] in
        r.Gillespie.converged && r.Gillespie.output = Some expected
      | _ -> false)

(* the incremental propensity tracker agrees with a from-scratch
   recomputation along random traces *)
let propensity_incremental_prop =
  prop "incremental = naive propensity totals on random traces" ~count:25
    QCheck.(pair (int_range 4 20) (int_range 0 10_000))
    (fun (input, seed) ->
      let p = Threshold.binary 5 in
      let rng = Splitmix64.create seed in
      let c0 = Population.initial_config p [| input |] in
      let counts = Array.init (Population.num_states p) (Mset.get c0) in
      let tracker = Gillespie.Propensity.create p counts in
      let agree () =
        let naive = Gillespie.Propensity.naive_total p counts in
        let drift = Float.abs (Gillespie.Propensity.total tracker -. naive) in
        drift <= 1e-6 *. Stdlib.max 1.0 naive
      in
      let ok = ref (agree ()) in
      (try
         for _ = 1 to 200 do
           (* fire a uniformly random enabled transition *)
           let enabled =
             List.filter
               (fun t ->
                 let a, b = p.Population.transitions.(t).Population.pre in
                 if a = b then counts.(a) >= 2 else counts.(a) >= 1 && counts.(b) >= 1)
               (List.init (Population.num_transitions p) Fun.id)
           in
           match enabled with
           | [] -> raise Exit
           | ts ->
             let t = List.nth ts (Splitmix64.int_below rng (List.length ts)) in
             let { Population.pre = a, b; post = a', b' } =
               p.Population.transitions.(t)
             in
             counts.(a) <- counts.(a) - 1;
             counts.(b) <- counts.(b) - 1;
             counts.(a') <- counts.(a') + 1;
             counts.(b') <- counts.(b') + 1;
             Gillespie.Propensity.update tracker counts ~fired:t;
             if not (agree ()) then ok := false
         done
       with Exit -> ());
      !ok)

(* -- Stats ---------------------------------------------------------------- *)

let test_stats_basic () =
  let xs = [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean xs);
  Alcotest.(check (float 1e-6)) "stddev" 1.2909944487 (Stats.stddev xs);
  Alcotest.(check (float 1e-9)) "median" 2.5 (Stats.median xs);
  Alcotest.(check (float 1e-9)) "q0" 1.0 (Stats.quantile 0.0 xs);
  Alcotest.(check (float 1e-9)) "q1" 4.0 (Stats.quantile 1.0 xs)

let test_stats_errors () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty") (fun () ->
      ignore (Stats.mean []));
  Alcotest.(check string) "summary of empty" "n=0" (Stats.summary [])

let stats_props =
  [
    prop "mean within min..max" QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (float_bound_inclusive 100.0))
      (fun xs ->
        let m = Stats.mean xs in
        m >= List.fold_left Stdlib.min infinity xs -. 1e-9
        && m <= List.fold_left Stdlib.max neg_infinity xs +. 1e-9);
    prop "quantiles monotone" QCheck.(list_of_size (QCheck.Gen.int_range 2 20) (float_bound_inclusive 100.0))
      (fun xs -> Stats.quantile 0.25 xs <= Stats.quantile 0.75 xs +. 1e-9);
    prop "stddev nonnegative" QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (float_bound_inclusive 100.0))
      (fun xs -> Stats.stddev xs >= 0.0);
  ]

let () =
  Alcotest.run "sim"
    [
      ( "splitmix64",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed matters" `Quick test_prng_seed_matters;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "pinned vectors" `Quick test_prng_pinned_vectors;
          Alcotest.test_case "split independence" `Quick test_prng_split_independence;
        ]
        @ prng_props );
      ( "simulator",
        [
          Alcotest.test_case "accepts" `Quick test_sim_flock_accepts;
          Alcotest.test_case "rejects" `Quick test_sim_flock_rejects;
          Alcotest.test_case "reproducible" `Quick test_sim_reproducible;
          Alcotest.test_case "small population" `Quick test_sim_small_population_rejected;
          Alcotest.test_case "parallel time" `Quick test_sim_parallel_time;
          Alcotest.test_case "samples" `Quick test_sample_parallel_times;
          Alcotest.test_case "leaders" `Quick test_sim_with_leaders;
          Alcotest.test_case "pair sampling chi-square" `Quick
            test_sample_pair_chi_square;
          sim_vs_exact_prop;
        ] );
      ( "gillespie",
        [
          Alcotest.test_case "verdicts" `Quick test_gillespie_verdicts;
          Alcotest.test_case "deterministic" `Quick test_gillespie_deterministic;
          Alcotest.test_case "inert" `Quick test_gillespie_inert;
          Alcotest.test_case "population preserved" `Quick test_gillespie_population_preserved;
          gillespie_vs_exact_prop;
          propensity_incremental_prop;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basic;
          Alcotest.test_case "errors" `Quick test_stats_errors;
        ]
        @ stats_props );
    ]
