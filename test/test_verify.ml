(* Tests for the exact semantics layer: configuration graphs, SCC
   computation, fairness verdicts and threshold determination. *)

let tiny () =
  (* a,a -> b,c ; b,c -> c,c ; completed with identities; accept c *)
  Population.complete
    (Population.make ~name:"tiny"
       ~states:[| "a"; "b"; "c" |]
       ~transitions:[ (0, 0, 1, 2); (1, 2, 2, 2) ]
       ~inputs:[ ("x", 0) ]
       ~output:[| false; false; true |]
       ())

(* -- Configgraph ---------------------------------------------------------- *)

let test_explore_counts () =
  let p = tiny () in
  let g = Configgraph.explore p (Population.initial_single p 2) in
  (* from 2·a: {2a} -> {b,c} -> {2c} *)
  Alcotest.(check int) "three configurations" 3 (Configgraph.num_configs g);
  Alcotest.(check int) "root" 0 g.Configgraph.root

let test_explore_budget () =
  let p = Flock.succinct 3 in
  Alcotest.check_raises "budget enforced" (Configgraph.Too_many_configs 5) (fun () ->
      ignore (Configgraph.explore ~max_configs:5 p (Population.initial_single p 12)))

let test_find_and_reach () =
  let p = tiny () in
  let g = Configgraph.explore p (Population.initial_single p 2) in
  let target = Mset.of_list 3 [ (2, 2) ] in
  (match Configgraph.find g target with
   | Some _ -> ()
   | None -> Alcotest.fail "all-c configuration not found");
  Alcotest.(check bool) "can_reach consensus" true
    (Configgraph.can_reach g ~src:g.Configgraph.root (fun c ->
         Population.output_of_config p c = Some true))

(* exploration preserves population size *)
let explore_size_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"exploration preserves agent count" ~count:20
       QCheck.(int_range 2 9)
       (fun n ->
         let p = Flock.succinct 2 in
         let g = Configgraph.explore p (Population.initial_single p n) in
         Array.for_all (fun c -> Mset.size c = n) g.Configgraph.configs))

(* -- Packed fast path ------------------------------------------------------ *)

(* the packed exploration is the same graph, index for index *)
let packed_graph_equal p c0 =
  let g = Configgraph.explore p c0 in
  let pg = Configgraph.Packed.explore p c0 in
  Configgraph.num_configs g = Configgraph.Packed.num_configs pg
  && g.Configgraph.root = pg.Configgraph.Packed.root
  && Array.for_all2
       (fun c i -> Mset.equal c (Configgraph.Packed.config pg i))
       g.Configgraph.configs
       (Array.init (Configgraph.Packed.num_configs pg) Fun.id)
  && g.Configgraph.succ = pg.Configgraph.Packed.succ

let test_packed_graph_identical () =
  let p = tiny () in
  Alcotest.(check bool) "tiny" true
    (packed_graph_equal p (Population.initial_single p 4));
  let p = Flock.succinct 2 in
  Alcotest.(check bool) "flock" true
    (packed_graph_equal p (Population.initial_single p 9))

let test_packed_budget () =
  let p = Flock.succinct 3 in
  Alcotest.check_raises "budget enforced" (Configgraph.Too_many_configs 5)
    (fun () ->
      ignore
        (Configgraph.Packed.explore ~max_configs:5 p
           (Population.initial_single p 12)))

let packed_graph_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"packed graph isomorphic to the reference graph" ~count:40
       QCheck.(triple (int_range 0 46655) (int_range 0 7) (int_range 2 8))
       (fun (assignment, output_bits, input) ->
         let p = Busy_beaver.protocol_of_code ~n:3 ~assignment ~output_bits in
         packed_graph_equal p (Population.initial_single p input)))

let packed_verdict_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"packed and reference verdicts agree" ~count:40
       QCheck.(triple (int_range 0 46655) (int_range 0 7) (int_range 2 8))
       (fun (assignment, output_bits, input) ->
         let p = Busy_beaver.protocol_of_code ~n:3 ~assignment ~output_bits in
         Fair_semantics.decide ~packed:true p [| input |]
         = Fair_semantics.decide ~packed:false p [| input |]))

(* -- Scc ------------------------------------------------------------------ *)

let test_scc_line () =
  (* 0 -> 1 -> 2: three singleton components, only the last is bottom *)
  let succ = [| [| 1 |]; [| 2 |]; [||] |] in
  let scc = Scc.compute succ in
  Alcotest.(check int) "three components" 3 scc.Scc.num_components;
  Alcotest.(check (list int)) "one bottom" [ scc.Scc.component.(2) ]
    (Scc.bottom_components scc)

let test_scc_cycle () =
  let succ = [| [| 1 |]; [| 0; 2 |]; [||] |] in
  let scc = Scc.compute succ in
  Alcotest.(check int) "cycle collapses" 2 scc.Scc.num_components;
  Alcotest.(check bool) "cycle not bottom" true
    (not scc.Scc.is_bottom.(scc.Scc.component.(0)));
  Alcotest.(check bool) "sink bottom" true scc.Scc.is_bottom.(scc.Scc.component.(2))

let test_scc_two_bottoms () =
  let succ = [| [| 1; 2 |]; [||]; [||] |] in
  let scc = Scc.compute succ in
  Alcotest.(check int) "two bottoms" 2 (List.length (Scc.bottom_components scc))

let test_scc_self_loop_graph () =
  (* strongly connected pair *)
  let succ = [| [| 1 |]; [| 0 |] |] in
  let scc = Scc.compute succ in
  Alcotest.(check int) "single component" 1 scc.Scc.num_components;
  Alcotest.(check bool) "it is bottom" true scc.Scc.is_bottom.(0)

(* members partition the nodes *)
let scc_partition_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"SCC members partition nodes" ~count:100
       QCheck.(pair (int_range 1 12) (list_of_size (QCheck.Gen.return 30) (pair small_nat small_nat)))
       (fun (n, edges) ->
         let succ = Array.make n [] in
         List.iter
           (fun (u, v) ->
             let u = u mod n and v = v mod n in
             if u <> v then succ.(u) <- v :: succ.(u))
           edges;
         let succ = Array.map Array.of_list succ in
         let scc = Scc.compute succ in
         let total =
           Array.fold_left (fun acc ms -> acc + List.length ms) 0 scc.Scc.members
         in
         total = n
         && Array.for_all
              (fun ms -> List.for_all (fun v -> List.mem v scc.Scc.members.(scc.Scc.component.(v))) ms)
              scc.Scc.members))

(* -- Fair_semantics ------------------------------------------------------- *)

let test_decide_tiny () =
  let p = tiny () in
  (* 2 agents: a,a -> b,c -> c,c: accepts *)
  (match Fair_semantics.decide p [| 2 |] with
   | Fair_semantics.Decides true -> ()
   | v -> Alcotest.failf "expected accept: %a" Fair_semantics.pp_verdict v);
  (* 3 agents: one a remains inert beside c's: never a consensus... the
     third a can still pair with nothing productive; a,a impossible, so
     the two converted agents end as c and a stays: mixed forever *)
  match Fair_semantics.decide p [| 3 |] with
  | Fair_semantics.Decides _ -> Alcotest.fail "3 agents should not stabilise to consensus"
  | _ -> ()

let test_check_predicate () =
  let p = Flock.succinct 2 in
  (match
     Fair_semantics.check_predicate p (Predicate.threshold_single 4)
       ~inputs:(List.init 8 (fun i -> [| i + 2 |]))
   with
  | Fair_semantics.Ok_all 8 -> ()
  | Fair_semantics.Ok_all n -> Alcotest.failf "checked %d inputs" n
  | Fair_semantics.Mismatch (v, verdict, expected) ->
    Alcotest.failf "mismatch at %d: %a (expected %b)" v.(0)
      Fair_semantics.pp_verdict verdict expected);
  (* wrong spec must be caught *)
  match
    Fair_semantics.check_predicate p (Predicate.threshold_single 5)
      ~inputs:[ [| 4 |] ]
  with
  | Fair_semantics.Mismatch _ -> ()
  | Fair_semantics.Ok_all _ -> Alcotest.fail "wrong spec accepted"

let test_valid_inputs () =
  let leaderless = Flock.succinct 1 in
  Alcotest.(check (list int)) "leaderless starts at 2" [ 2; 3; 4 ]
    (Fair_semantics.valid_inputs_single leaderless ~max:4);
  let with_leaders = Leader_counter.protocol 2 in
  Alcotest.(check (list int)) "two leaders allow 0" [ 0; 1; 2 ]
    (Fair_semantics.valid_inputs_single with_leaders ~max:2)

(* -- Eta_search ------------------------------------------------------------ *)

let test_eta_exact () =
  List.iter
    (fun (p, expected, max_input) ->
      match Eta_search.find p ~max_input with
      | Eta_search.Eta eta -> Alcotest.(check int) p.Population.name expected eta
      | r -> Alcotest.failf "%s: %a" p.Population.name Eta_search.pp_result r)
    [
      (Flock.naive 2, 4, 10);
      (Flock.succinct 2, 4, 10);
      (Flock.succinct 3, 8, 18);
      (Threshold.binary 6, 6, 12);
      (Threshold.binary 11, 11, 16);
      (Threshold.unary 4, 4, 9);
      (Leader_counter.protocol 2, 4, 9);
    ]

let test_eta_always_accepts () =
  (match Eta_search.find (Threshold.binary 1) ~max_input:6 with
   | Eta_search.Always_accepts -> ()
   | r -> Alcotest.failf "expected always-accepts: %a" Eta_search.pp_result r);
  (* eta = 2 is indistinguishable from always-accepting, because every
     valid leaderless input has at least two agents *)
  match Eta_search.find (Flock.naive 1) ~max_input:6 with
  | Eta_search.Always_accepts -> ()
  | r -> Alcotest.failf "eta=2 should read always-accepts: %a" Eta_search.pp_result r

let test_eta_always_rejects () =
  (* a threshold beyond the cutoff looks like reject-all *)
  match Eta_search.find (Flock.succinct 4) ~max_input:9 with
  | Eta_search.Always_rejects -> ()
  | r -> Alcotest.failf "expected always-rejects: %a" Eta_search.pp_result r

let test_eta_not_threshold () =
  match Eta_search.find (Modulo_protocol.protocol ~m:2 ~r:0) ~max_input:8 with
  | Eta_search.Not_threshold _ -> ()
  | r -> Alcotest.failf "expected not-threshold: %a" Eta_search.pp_result r

(* -- Witness traces ---------------------------------------------------------- *)

let test_witness_basic () =
  let p = Flock.succinct 2 in
  let src = Population.initial_single p 4 in
  match
    Witness.find p ~src ~target:(fun c -> Population.output_of_config p c = Some true)
  with
  | None -> Alcotest.fail "accepting configuration unreachable"
  | Some (sigma, c) ->
    (* replay must land exactly on the reported configuration *)
    (match Witness.replay p src sigma with
     | Some c' -> Alcotest.(check bool) "replay agrees" true (Mset.equal c c')
     | None -> Alcotest.fail "trace not fireable");
    Alcotest.(check (option bool)) "target satisfied" (Some true)
      (Population.output_of_config p c)

let test_witness_minimal_length () =
  (* from 4 agents, reaching all-accepting takes exactly 4 interactions:
     two merges to v2, one merge to v4, then... v4 converts the zeros:
     1,1->0,2 ; 1,1->0,2 ; 2,2->0,4 ; then three conversions of v0 *)
  let p = Flock.succinct 2 in
  let src = Population.initial_single p 4 in
  match
    Witness.find p ~src ~target:(fun c -> Population.output_of_config p c = Some true)
  with
  | Some (sigma, _) -> Alcotest.(check int) "shortest trace" 6 (List.length sigma)
  | None -> Alcotest.fail "unreachable"

let test_witness_unreachable () =
  let p = Flock.succinct 2 in
  let src = Population.initial_single p 3 in
  Alcotest.(check bool) "3 agents never accept" true
    (Witness.find p ~src ~target:(fun c -> Population.output_of_config p c = Some true)
     = None)

let test_witness_find_config () =
  let p = Flock.succinct 2 in
  let src = Population.initial_single p 2 in
  let d = Population.num_states p in
  let target = Mset.of_list d [ (0, 1); (2, 1) ] in
  (match Witness.find_config p ~src target with
   | Some [ _ ] -> ()
   | Some sigma -> Alcotest.failf "expected one step, got %d" (List.length sigma)
   | None -> Alcotest.fail "one merge away");
  Alcotest.(check bool) "self is empty trace" true
    (Witness.find_config p ~src src = Some [])

(* -- Failure injection: broken protocols are caught -------------------------- *)

let test_broken_output_detected () =
  (* flip one output bit of a correct protocol: the spec check fails *)
  let p = Flock.succinct 2 in
  let output = Array.copy p.Population.output in
  output.(0) <- not output.(0);
  let broken =
    Population.make ~name:"broken" ~states:(Array.copy p.Population.states)
      ~transitions:
        (Array.to_list
           (Array.map
              (fun { Population.pre = a, b; post = a', b' } -> (a, b, a', b'))
              p.Population.transitions))
      ~inputs:[ ("x", p.Population.input_map.(0)) ]
      ~output ()
  in
  match
    Fair_semantics.check_predicate broken (Predicate.threshold_single 4)
      ~inputs:[ [| 2 |]; [| 3 |]; [| 4 |]; [| 5 |] ]
  with
  | Fair_semantics.Mismatch _ -> ()
  | Fair_semantics.Ok_all _ -> Alcotest.fail "broken output map accepted"

let test_broken_transition_detected () =
  (* redirect the top-merging transition: the threshold changes or breaks *)
  let p = Flock.succinct 2 in
  let quads =
    Array.to_list
      (Array.map
         (fun { Population.pre = a, b; post = a', b' } ->
           (* v2,v2 -> v0,v4 becomes v2,v2 -> v0,v0 *)
           if (a, b) = (2, 2) then (a, b, 0, 0) else (a, b, a', b'))
         p.Population.transitions)
  in
  let broken =
    Population.make ~name:"no-top" ~states:(Array.copy p.Population.states)
      ~transitions:quads
      ~inputs:[ ("x", p.Population.input_map.(0)) ]
      ~output:(Array.copy p.Population.output) ()
  in
  match Eta_search.find broken ~max_input:10 with
  | Eta_search.Eta 4 -> Alcotest.fail "mutation not detected"
  | _ -> ()

let () =
  Alcotest.run "verify"
    [
      ( "configgraph",
        [
          Alcotest.test_case "explore counts" `Quick test_explore_counts;
          Alcotest.test_case "budget" `Quick test_explore_budget;
          Alcotest.test_case "find and reach" `Quick test_find_and_reach;
          explore_size_prop;
        ] );
      ( "packed",
        [
          Alcotest.test_case "graph identical" `Quick test_packed_graph_identical;
          Alcotest.test_case "budget" `Quick test_packed_budget;
          packed_graph_prop;
          packed_verdict_prop;
        ] );
      ( "scc",
        [
          Alcotest.test_case "line" `Quick test_scc_line;
          Alcotest.test_case "cycle" `Quick test_scc_cycle;
          Alcotest.test_case "two bottoms" `Quick test_scc_two_bottoms;
          Alcotest.test_case "strongly connected" `Quick test_scc_self_loop_graph;
          scc_partition_prop;
        ] );
      ( "fair-semantics",
        [
          Alcotest.test_case "tiny protocol" `Quick test_decide_tiny;
          Alcotest.test_case "check_predicate" `Quick test_check_predicate;
          Alcotest.test_case "valid inputs" `Quick test_valid_inputs;
        ] );
      ( "eta-search",
        [
          Alcotest.test_case "exact thresholds" `Quick test_eta_exact;
          Alcotest.test_case "always accepts" `Quick test_eta_always_accepts;
          Alcotest.test_case "always rejects" `Quick test_eta_always_rejects;
          Alcotest.test_case "not a threshold" `Quick test_eta_not_threshold;
        ] );
      ( "witness",
        [
          Alcotest.test_case "basic" `Quick test_witness_basic;
          Alcotest.test_case "minimal length" `Quick test_witness_minimal_length;
          Alcotest.test_case "unreachable" `Quick test_witness_unreachable;
          Alcotest.test_case "find_config" `Quick test_witness_find_config;
        ] );
      ( "failure-injection",
        [
          Alcotest.test_case "broken output" `Quick test_broken_output_detected;
          Alcotest.test_case "broken transition" `Quick test_broken_transition_detected;
        ] );
    ]
